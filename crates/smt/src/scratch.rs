//! Thread-local term overlays for the parallel analysis front-end.
//!
//! Workers of the level-parallel dataflow (§4) and the sharded
//! interference rounds (§4.3) must build guard terms concurrently, but
//! [`TermPool`] construction needs `&mut self` and the pipeline's
//! determinism guarantee forbids racing on insertion order. The scheme
//! here keeps the base pool frozen while workers run:
//!
//! 1. each work item gets a [`ScratchPool`] over `&TermPool` — reads
//!    fall through to the base, new terms intern into a private tail
//!    whose ids start at `base.len()`;
//! 2. the worker ships its tail back as an owned [`ScratchLog`]
//!    (dropping the borrow so the coordinator can mutate the pool);
//! 3. the coordinator commits logs **in work-item order**, replaying
//!    each local node into the base pool and producing a [`TermRemap`]
//!    from scratch ids to canonical pool ids.
//!
//! Because every worker builds against the same frozen base and logs
//! are replayed in a fixed order, the final pool contents — and every
//! remapped id — are independent of scheduling. That is the keystone of
//! the pipeline's byte-identical-output guarantee across worker counts.

use std::collections::HashMap;

use crate::term::{Node, TermBuild, TermId, TermPool};

/// A term store layered over a frozen [`TermPool`].
///
/// Implements [`TermBuild`], so all simplifying constructors work
/// unchanged; terms already in the base are found there and new terms
/// go to a local tail. Ids handed out for local terms are provisional —
/// they become canonical only through [`ScratchLog::commit`].
#[derive(Debug)]
pub struct ScratchPool<'a> {
    base: &'a TermPool,
    base_len: usize,
    nodes: Vec<Node>,
    dedup: HashMap<Node, TermId>,
}

impl<'a> ScratchPool<'a> {
    /// Creates an overlay over `base`. The base must not change while
    /// the overlay is alive (the borrow enforces this).
    pub fn new(base: &'a TermPool) -> Self {
        ScratchPool {
            base,
            base_len: base.len(),
            nodes: Vec::new(),
            dedup: HashMap::new(),
        }
    }

    /// Number of terms in the base pool at overlay creation; local ids
    /// start here.
    pub fn base_len(&self) -> usize {
        self.base_len
    }

    /// Number of locally created terms.
    pub fn local_len(&self) -> usize {
        self.nodes.len()
    }

    /// Detaches the local tail, dropping the base borrow. The returned
    /// log can cross back to the coordinator thread and outlive the
    /// scope that froze the pool.
    pub fn into_log(self) -> ScratchLog {
        ScratchLog {
            base_len: self.base_len,
            nodes: self.nodes,
        }
    }
}

impl TermBuild for ScratchPool<'_> {
    fn term_count(&self) -> usize {
        self.base_len + self.nodes.len()
    }

    fn node(&self, t: TermId) -> &Node {
        if t.index() < self.base_len {
            self.base.node(t)
        } else {
            &self.nodes[t.index() - self.base_len]
        }
    }

    fn intern_node(&mut self, n: Node) -> TermId {
        // Nodes whose children are all base ids may already exist in
        // the base; anything referencing a local child can't.
        if let Some(id) = self.base.lookup(&n) {
            return id;
        }
        if let Some(&id) = self.dedup.get(&n) {
            return id;
        }
        let id = TermId((self.base_len + self.nodes.len()) as u32);
        self.nodes.push(n.clone());
        self.dedup.insert(n, id);
        id
    }
}

/// The owned tail of a [`ScratchPool`]: the locally created nodes in
/// creation order, plus the base length their ids are relative to.
#[derive(Debug)]
pub struct ScratchLog {
    base_len: usize,
    nodes: Vec<Node>,
}

impl ScratchLog {
    /// Whether the worker created any terms.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of local terms to replay.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Replays the local nodes into `pool`, which must be the pool this
    /// log's scratch was created over (possibly grown since by earlier
    /// commits — base ids below `base_len` are stable because the pool
    /// is append-only).
    ///
    /// Children are remapped before interning, and `And`/`Or` child
    /// lists are re-sorted: the sorted-by-id invariant does not survive
    /// an id remap even though flattening, deduplication and the other
    /// structural rewrites do (the remap is injective). Local terms
    /// that duplicate terms created meanwhile collapse onto the
    /// existing ids.
    pub fn commit(self, pool: &mut TermPool) -> TermRemap {
        let mut map: Vec<TermId> = Vec::with_capacity(self.nodes.len());
        for node in self.nodes {
            let r = |t: TermId| -> TermId {
                if t.index() < self.base_len {
                    t
                } else {
                    map[t.index() - self.base_len]
                }
            };
            let remapped = match node {
                Node::True | Node::False | Node::BoolAtom(_) | Node::Order(_, _) => node,
                Node::Not(x) => Node::Not(r(x)),
                Node::And(xs) => {
                    let mut v: Vec<TermId> = xs.into_iter().map(r).collect();
                    v.sort_unstable();
                    Node::And(v)
                }
                Node::Or(xs) => {
                    let mut v: Vec<TermId> = xs.into_iter().map(r).collect();
                    v.sort_unstable();
                    Node::Or(v)
                }
            };
            map.push(pool.intern_node(remapped));
        }
        TermRemap {
            base_len: self.base_len,
            map,
        }
    }
}

/// Translation from scratch-relative term ids to canonical pool ids,
/// produced by [`ScratchLog::commit`]. Base ids map to themselves.
#[derive(Debug)]
pub struct TermRemap {
    base_len: usize,
    map: Vec<TermId>,
}

impl TermRemap {
    /// An empty remap over a pool of `base_len` terms; the identity.
    /// Useful for serial paths that never created scratch terms.
    pub fn identity(base_len: usize) -> Self {
        TermRemap {
            base_len,
            map: Vec::new(),
        }
    }

    /// Maps a term id that was valid in the scratch overlay to its
    /// canonical id in the committed pool.
    pub fn remap(&self, t: TermId) -> TermId {
        if t.index() < self.base_len {
            t
        } else {
            self.map[t.index() - self.base_len]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_reads_through_to_base() {
        let mut pool = TermPool::new();
        let a = pool.bool_atom(0);
        let mut s = ScratchPool::new(&pool);
        // Existing terms resolve to their base ids without copying.
        assert_eq!(TermBuild::bool_atom(&mut s, 0), a);
        assert_eq!(s.local_len(), 0);
        assert_eq!(TermBuild::tt(&s), pool.tt());
    }

    #[test]
    fn local_ids_start_at_base_len_and_commit_remaps() {
        let mut pool = TermPool::new();
        let a = pool.bool_atom(0);
        let base_len = pool.len();

        let mut s = ScratchPool::new(&pool);
        let b = TermBuild::bool_atom(&mut s, 1);
        assert_eq!(b.index(), base_len);
        let ab = TermBuild::and2(&mut s, a, b);

        let remap = s.into_log().commit(&mut pool);
        let b2 = pool.bool_atom(1);
        let ab2 = pool.and2(a, b2);
        assert_eq!(remap.remap(b), b2);
        assert_eq!(remap.remap(ab), ab2);
        assert_eq!(remap.remap(a), a);
    }

    #[test]
    fn commit_resorts_children_after_remap() {
        let mut pool = TermPool::new();
        let a = pool.bool_atom(0);

        // Worker 1 creates only atom 2; worker 2 creates atoms 1 and 2
        // and conjoins them. After worker 1 commits, atom 2 has a
        // smaller pool id than atom 1 will get, inverting the order the
        // scratch sorted by — commit must restore sortedness.
        let mut s1 = ScratchPool::new(&pool);
        TermBuild::bool_atom(&mut s1, 2);
        let mut s2 = ScratchPool::new(&pool);
        let x1 = TermBuild::bool_atom(&mut s2, 1);
        let x2 = TermBuild::bool_atom(&mut s2, 2);
        let conj = TermBuild::and(&mut s2, [a, x1, x2]);

        let log1 = s1.into_log();
        let log2 = s2.into_log();
        log1.commit(&mut pool);
        let remap2 = log2.commit(&mut pool);

        let y1 = pool.bool_atom(1);
        let y2 = pool.bool_atom(2);
        let expect = pool.and([a, y1, y2]);
        assert_eq!(remap2.remap(conj), expect);
        match pool.node(expect) {
            Node::And(xs) => assert!(xs.windows(2).all(|w| w[0] < w[1])),
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn parallel_commit_order_determines_pool_contents() {
        // Two independent scratches over the same frozen base, built
        // "concurrently", committed in item order: the resulting pool
        // must match a serial run that did the same work in that order.
        let mut pool = TermPool::new();
        let seed = pool.bool_atom(0);

        let mut s1 = ScratchPool::new(&pool);
        let mut s2 = ScratchPool::new(&pool);
        let t1 = {
            let o = TermBuild::order_lt(&mut s1, 3, 7);
            TermBuild::and2(&mut s1, seed, o)
        };
        let t2 = {
            let o = TermBuild::order_lt(&mut s2, 3, 7);
            let n = TermBuild::not(&mut s2, seed);
            TermBuild::or2(&mut s2, n, o)
        };
        let (log1, log2) = (s1.into_log(), s2.into_log());
        let r1 = log1.commit(&mut pool);
        let r2 = log2.commit(&mut pool);

        let mut serial = TermPool::new();
        let seed_s = serial.bool_atom(0);
        let o1 = serial.order_lt(3, 7);
        let t1_s = serial.and2(seed_s, o1);
        let o2 = serial.order_lt(3, 7);
        let n = serial.not(seed_s);
        let t2_s = serial.or2(n, o2);

        assert_eq!(r1.remap(t1), t1_s);
        assert_eq!(r2.remap(t2), t2_s);
        assert_eq!(pool.len(), serial.len());
    }

    #[test]
    fn duplicate_local_terms_collapse_on_commit() {
        let mut pool = TermPool::new();
        let mut s1 = ScratchPool::new(&pool);
        let mut s2 = ScratchPool::new(&pool);
        let a1 = TermBuild::bool_atom(&mut s1, 9);
        let a2 = TermBuild::bool_atom(&mut s2, 9);
        let (log1, log2) = (s1.into_log(), s2.into_log());
        let r1 = log1.commit(&mut pool);
        let r2 = log2.commit(&mut pool);
        assert_eq!(r1.remap(a1), r2.remap(a2));
    }

    #[test]
    fn identity_remap_passes_ids_through() {
        let mut pool = TermPool::new();
        let a = pool.bool_atom(0);
        let r = TermRemap::identity(pool.len());
        assert_eq!(r.remap(a), a);
    }
}
