//! Brute-force differential for lock-order cycle mining.
//!
//! The conflict-lock checker layers a lock-order graph over the strict
//! partial-order theory: nodes are lock alias classes, an edge a→b
//! records "holds a while acquiring b", and a deadlock candidate is a
//! directed cycle. The detector mines *every* cycle by iterating
//! `check_orders` and deleting each reported conflict core. Ground
//! truth is the ∃-permutation definition, enumerable for small class
//! universes: a set of acquisition edges is deadlock-free iff some
//! total acquisition order places every held class before the class it
//! acquires.

use canary_smt::theory::{check_orders, OrderEdge, TheoryResult};
use proptest::prelude::*;

/// Ground truth: does some permutation of the lock classes place every
/// edge's held class before its acquired class?
fn embeds_in_total_order(edges: &[(u32, u32)]) -> bool {
    let mut classes: Vec<u32> = edges.iter().flat_map(|&(a, b)| [a, b]).collect();
    classes.sort_unstable();
    classes.dedup();
    let n = classes.len();
    assert!(n <= 6, "brute force is factorial; keep universes tiny");
    let mut perm: Vec<usize> = (0..n).collect();
    loop {
        let pos = |e: u32| {
            let i = classes.binary_search(&e).expect("class interned");
            perm.iter().position(|&p| p == i).expect("permutation")
        };
        if edges.iter().all(|&(a, b)| pos(a) < pos(b)) {
            return true;
        }
        if !next_permutation(&mut perm) {
            return false;
        }
    }
}

/// Steps `perm` to its lexicographic successor; false after the last.
fn next_permutation(perm: &mut [usize]) -> bool {
    let n = perm.len();
    if n < 2 {
        return false;
    }
    let Some(i) = (0..n - 1).rev().find(|&i| perm[i] < perm[i + 1]) else {
        return false;
    };
    let j = (i + 1..n).rev().find(|&j| perm[j] > perm[i]).expect("exists");
    perm.swap(i, j);
    perm[i + 1..].reverse();
    true
}

/// Mirrors the detector's mining loop: ask the theory for a conflict
/// core, record it as one cycle, delete its atoms, repeat until the
/// remaining acquisition graph is consistent.
fn mine_cycles(pairs: &[(u32, u32)]) -> Vec<Vec<(u32, u32)>> {
    let mut edges: Vec<OrderEdge> = pairs
        .iter()
        .enumerate()
        .map(|(i, &(from, to))| OrderEdge { from, to, atom: i })
        .collect();
    let mut cycles = Vec::new();
    loop {
        match check_orders(&edges) {
            TheoryResult::Consistent => return cycles,
            TheoryResult::Conflict(atoms) => {
                cycles.push(atoms.iter().map(|&a| pairs[a]).collect());
                edges.retain(|e| !atoms.contains(&e.atom));
            }
        }
    }
}

/// One edge set against brute force: cycles are mined iff no total
/// acquisition order exists, every mined cycle is itself un-embeddable,
/// and the graph minus all mined cycles is deadlock-free.
fn check_against_brute(pairs: &[(u32, u32)]) {
    let truth = embeds_in_total_order(pairs);
    let cycles = mine_cycles(pairs);
    assert_eq!(
        cycles.is_empty(),
        truth,
        "mining disagrees with ∃-permutation ground truth: {pairs:?} -> {cycles:?}"
    );
    let mut mined: Vec<(u32, u32)> = Vec::new();
    for cycle in &cycles {
        assert!(
            !embeds_in_total_order(cycle),
            "mined cycle {cycle:?} embeds in a total order ({pairs:?})"
        );
        mined.extend_from_slice(cycle);
    }
    // Deleting every mined cycle leaves a deadlock-free graph. Stated
    // over distinct edges — duplicates share one atom's fate only in
    // the mined-pair view, not in the per-atom loop above.
    let mut distinct = pairs.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    if distinct.len() == pairs.len() {
        let residue: Vec<(u32, u32)> = pairs
            .iter()
            .filter(|p| !mined.contains(p))
            .copied()
            .collect();
        assert!(
            embeds_in_total_order(&residue),
            "after deleting mined cycles the graph must be deadlock-free: \
             {pairs:?} minus {mined:?} leaves {residue:?}"
        );
    }
}

/// All 2^6 acquisition-edge subsets over 3 lock classes.
#[test]
fn exhaustive_three_classes() {
    let universe: Vec<(u32, u32)> = (0..3u32)
        .flat_map(|a| (0..3u32).filter(move |&b| b != a).map(move |b| (a, b)))
        .collect();
    assert_eq!(universe.len(), 6);
    for mask in 0u32..(1 << universe.len()) {
        let pairs: Vec<(u32, u32)> = universe
            .iter()
            .enumerate()
            .filter(|&(i, _)| mask & (1 << i) != 0)
            .map(|(_, &p)| p)
            .collect();
        check_against_brute(&pairs);
    }
}

/// All 2^12 acquisition-edge subsets over 4 lock classes.
#[test]
fn exhaustive_four_classes() {
    let universe: Vec<(u32, u32)> = (0..4u32)
        .flat_map(|a| (0..4u32).filter(move |&b| b != a).map(move |b| (a, b)))
        .collect();
    assert_eq!(universe.len(), 12);
    for mask in 0u32..(1 << universe.len()) {
        let pairs: Vec<(u32, u32)> = universe
            .iter()
            .enumerate()
            .filter(|&(i, _)| mask & (1 << i) != 0)
            .map(|(_, &p)| p)
            .collect();
        check_against_brute(&pairs);
    }
}

/// The classic two-thread shape: a→b from one thread, b→a from the
/// other, mined as exactly one two-edge cycle.
#[test]
fn ab_ba_is_one_cycle() {
    let cycles = mine_cycles(&[(0, 1), (1, 0)]);
    assert_eq!(cycles.len(), 1);
    assert_eq!(cycles[0].len(), 2);
}

/// Self-acquisition (a→a, the double-lock shape at class granularity)
/// can never embed and is mined as a singleton cycle.
#[test]
fn self_acquisition_always_mined() {
    for c in 0..6u32 {
        let cycles = mine_cycles(&[(c, c)]);
        assert_eq!(cycles.len(), 1, "class {c}");
        assert_eq!(cycles[0], vec![(c, c)], "class {c}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Random acquisition multigraphs over up to 6 classes: mining and
    /// the ∃-permutation brute force agree on deadlock-freedom, and
    /// every mined cycle is genuinely cyclic.
    #[test]
    fn random_acquisition_graphs_match_brute_force(
        pairs in proptest::collection::vec((0u32..6, 0u32..6), 0..14)
    ) {
        check_against_brute(&pairs);
    }
}
