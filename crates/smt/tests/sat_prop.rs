//! SAT-level property tests: the CDCL core against a reference DPLL on
//! random CNF instances, plus invariants of the incremental interface.

use proptest::prelude::*;

use canary_smt::{Lit, SatResult, SatSolver, Var};

type Cnf = Vec<Vec<i32>>;

fn cnf_strategy(max_vars: i32) -> impl Strategy<Value = Cnf> {
    let lit = (1..=max_vars).prop_flat_map(|v| {
        prop_oneof![Just(v), Just(-v)]
    });
    let clause = prop::collection::vec(lit, 1..4);
    prop::collection::vec(clause, 0..24)
}

fn to_lits(clause: &[i32]) -> Vec<Lit> {
    clause
        .iter()
        .map(|&x| {
            let v = Var(x.unsigned_abs() - 1);
            if x > 0 {
                Lit::pos(v)
            } else {
                Lit::neg(v)
            }
        })
        .collect()
}

fn solver_for(n_vars: i32, cnf: &Cnf) -> SatSolver {
    let mut s = SatSolver::new();
    for _ in 0..n_vars {
        s.new_var();
    }
    for c in cnf {
        s.add_clause(&to_lits(c));
    }
    s
}

/// Reference: brute-force enumeration (≤ 2^10 assignments).
fn brute_force(n_vars: i32, cnf: &Cnf) -> bool {
    for bits in 0..(1u32 << n_vars) {
        let val = |x: i32| -> bool {
            let v = x.unsigned_abs() - 1;
            let b = bits >> v & 1 == 1;
            if x > 0 {
                b
            } else {
                !b
            }
        };
        if cnf.iter().all(|c| c.iter().any(|&l| val(l))) {
            return true;
        }
    }
    false
}

const N: i32 = 8;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn cdcl_matches_brute_force(cnf in cnf_strategy(N)) {
        let mut s = solver_for(N, &cnf);
        let expected = brute_force(N, &cnf);
        prop_assert_eq!(s.solve().is_sat(), expected, "{:?}", cnf);
    }

    #[test]
    fn models_satisfy_every_clause(cnf in cnf_strategy(N)) {
        let mut s = solver_for(N, &cnf);
        if let SatResult::Sat(model) = s.solve() {
            for c in &cnf {
                prop_assert!(
                    c.iter().any(|&x| {
                        let v = (x.unsigned_abs() - 1) as usize;
                        (x > 0) == model[v]
                    }),
                    "violated clause {:?} under {:?}",
                    c,
                    model
                );
            }
        }
    }

    #[test]
    fn solving_is_repeatable(cnf in cnf_strategy(N)) {
        let mut s = solver_for(N, &cnf);
        let a = s.solve().is_sat();
        let b = s.solve().is_sat();
        prop_assert_eq!(a, b, "second solve must agree");
    }

    #[test]
    fn incremental_equals_batch(cnf in cnf_strategy(N)) {
        // Adding clauses one by one with interleaved solves must end at
        // the same verdict as adding them all up front.
        let mut batch = solver_for(N, &cnf);
        let expected = batch.solve().is_sat();
        let mut inc = SatSolver::new();
        for _ in 0..N {
            inc.new_var();
        }
        let mut alive = true;
        for c in &cnf {
            alive = inc.add_clause(&to_lits(c)) && alive;
            let _ = inc.solve();
        }
        prop_assert_eq!(inc.solve().is_sat(), expected);
        let _ = alive;
    }

    #[test]
    fn assumptions_imply_unconditional_sat(cnf in cnf_strategy(N), seed in 0u32..256) {
        // If the formula is SAT under assumptions, it is SAT without them.
        let mut s = solver_for(N, &cnf);
        let assumptions: Vec<Lit> = (0..3)
            .map(|i| {
                let v = Var((seed >> (2 * i)) % N as u32);
                Lit::new(v, seed >> (6 + i) & 1 == 1)
            })
            .collect();
        let under = s.solve_with_assumptions(&assumptions).is_sat();
        let free = s.solve().is_sat();
        if under {
            prop_assert!(free, "assumption-SAT implies SAT");
        }
    }

    #[test]
    fn unsat_stays_unsat_under_more_clauses(cnf in cnf_strategy(N), extra in cnf_strategy(N)) {
        let mut s = solver_for(N, &cnf);
        if s.solve().is_sat() {
            return Ok(());
        }
        for c in &extra {
            s.add_clause(&to_lits(c));
        }
        prop_assert!(!s.solve().is_sat(), "UNSAT is monotone under strengthening");
    }
}
