//! Property-based tests: the CDCL(T) solver against a brute-force
//! oracle that enumerates Boolean assignments × total orders of events.

use proptest::prelude::*;

use canary_smt::{check, SmtResult, SolverOptions, SolverStats, TermId, TermPool};

const N_BOOLS: u32 = 4;
const N_EVENTS: u32 = 4;

/// A serializable formula shape proptest can generate; converted into a
/// pooled term afterwards.
#[derive(Clone, Debug)]
enum Shape {
    T,
    F,
    B(u32),
    O(u32, u32),
    Not(Box<Shape>),
    And(Vec<Shape>),
    Or(Vec<Shape>),
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    let leaf = prop_oneof![
        Just(Shape::T),
        Just(Shape::F),
        (0..N_BOOLS).prop_map(Shape::B),
        ((0..N_EVENTS), (0..N_EVENTS)).prop_map(|(a, b)| Shape::O(a, b)),
    ];
    leaf.prop_recursive(4, 24, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(|s| Shape::Not(Box::new(s))),
            prop::collection::vec(inner.clone(), 1..4).prop_map(Shape::And),
            prop::collection::vec(inner, 1..4).prop_map(Shape::Or),
        ]
    })
}

fn build(pool: &mut TermPool, s: &Shape) -> TermId {
    match s {
        Shape::T => pool.tt(),
        Shape::F => pool.ff(),
        Shape::B(i) => pool.bool_atom(*i),
        Shape::O(a, b) => pool.order_lt(*a, *b),
        Shape::Not(x) => {
            let inner = build(pool, x);
            pool.not(inner)
        }
        Shape::And(xs) => {
            let parts: Vec<TermId> = xs.iter().map(|x| build(pool, x)).collect();
            pool.and(parts)
        }
        Shape::Or(xs) => {
            let parts: Vec<TermId> = xs.iter().map(|x| build(pool, x)).collect();
            pool.or(parts)
        }
    }
}

/// Brute force: exists a Boolean assignment and a permutation of events
/// satisfying the formula?
fn brute_force_sat(pool: &TermPool, t: TermId) -> bool {
    let perms = permutations(N_EVENTS as usize);
    for bools in 0..(1u32 << N_BOOLS) {
        let bval = |i: u32| bools >> i & 1 == 1;
        for perm in &perms {
            // position[e] = rank of event e in the total order
            let oval = |a: u32, b: u32| perm[a as usize] < perm[b as usize];
            if pool.eval(t, &bval, &oval) {
                return true;
            }
        }
    }
    false
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    fn go(items: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
        if k == items.len() {
            // invert: position of event e
            let mut pos = vec![0; items.len()];
            for (rank, &e) in items.iter().enumerate() {
                pos[e] = rank;
            }
            out.push(pos);
            return;
        }
        for i in k..items.len() {
            items.swap(k, i);
            go(items, k + 1, out);
            items.swap(k, i);
        }
    }
    let mut items: Vec<usize> = (0..n).collect();
    let mut out = Vec::new();
    go(&mut items, 0, &mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn cdclt_matches_brute_force(shape in shape_strategy()) {
        let mut pool = TermPool::new();
        let t = build(&mut pool, &shape);
        let expected = brute_force_sat(&pool, t);
        let stats = SolverStats::default();
        let got = check(&pool, t, &SolverOptions::default(), &stats);
        prop_assert_eq!(got.is_sat(), expected, "term: {}", pool.render(t));
    }

    #[test]
    fn prefilter_is_sound(shape in shape_strategy()) {
        // With the prefilter off, results must be identical.
        let mut pool = TermPool::new();
        let t = build(&mut pool, &shape);
        let stats = SolverStats::default();
        let with = check(&pool, t, &SolverOptions::default(), &stats);
        let without = check(
            &pool,
            t,
            &SolverOptions { prefilter: false, ..SolverOptions::default() },
            &stats,
        );
        prop_assert_eq!(with, without);
    }

    #[test]
    fn negation_flips_at_least_one_direction(shape in shape_strategy()) {
        // t and ¬t cannot both be unsat.
        let mut pool = TermPool::new();
        let t = build(&mut pool, &shape);
        let nt = pool.not(t);
        let stats = SolverStats::default();
        let rt = check(&pool, t, &SolverOptions::default(), &stats);
        let rnt = check(&pool, nt, &SolverOptions::default(), &stats);
        prop_assert!(
            rt == SmtResult::Sat || rnt == SmtResult::Sat,
            "both t and not t unsat: {}",
            pool.render(t)
        );
    }

    #[test]
    fn conjunction_with_true_is_identity(shape in shape_strategy()) {
        let mut pool = TermPool::new();
        let t = build(&mut pool, &shape);
        let tt = pool.tt();
        let t2 = pool.and2(t, tt);
        prop_assert_eq!(t, t2);
    }

    #[test]
    fn cube_and_conquer_matches_plain(shape in shape_strategy()) {
        let mut pool = TermPool::new();
        let t = build(&mut pool, &shape);
        let stats = SolverStats::default();
        let plain = check(&pool, t, &SolverOptions::default(), &stats);
        let cube = check(
            &pool,
            t,
            &SolverOptions { num_threads: 2, cube_split: 2, ..SolverOptions::default() },
            &stats,
        );
        prop_assert_eq!(plain, cube);
    }
}
