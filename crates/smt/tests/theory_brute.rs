//! Brute-force differential for the strict partial-order theory.
//!
//! The theory checker says a set of oriented order edges is consistent
//! iff it is acyclic. Sequential consistency's ground truth is
//! different on its face: the edges must embed into some *total* order
//! of the events. For ≤ 6 events the totality side is enumerable — try
//! all permutations — so the two definitions can be compared verdict
//! for verdict, exhaustively on small event universes and
//! property-based beyond.

use canary_smt::theory::{check_orders, OrderEdge, TheoryResult};
use proptest::prelude::*;

/// Ground truth: does some permutation of the events place every edge
/// source before its destination?
fn embeds_in_total_order(edges: &[(u32, u32)]) -> bool {
    let mut events: Vec<u32> = edges.iter().flat_map(|&(a, b)| [a, b]).collect();
    events.sort_unstable();
    events.dedup();
    let n = events.len();
    assert!(n <= 6, "brute force is factorial; keep universes tiny");
    let mut perm: Vec<usize> = (0..n).collect();
    loop {
        let pos = |e: u32| {
            let i = events.binary_search(&e).expect("event interned");
            perm.iter().position(|&p| p == i).expect("permutation")
        };
        if edges.iter().all(|&(a, b)| pos(a) < pos(b)) {
            return true;
        }
        if !next_permutation(&mut perm) {
            return false;
        }
    }
}

/// Steps `perm` to its lexicographic successor; false after the last.
fn next_permutation(perm: &mut [usize]) -> bool {
    let n = perm.len();
    if n < 2 {
        return false;
    }
    let Some(i) = (0..n - 1).rev().find(|&i| perm[i] < perm[i + 1]) else {
        return false;
    };
    let j = (i + 1..n).rev().find(|&j| perm[j] > perm[i]).expect("exists");
    perm.swap(i, j);
    perm[i + 1..].reverse();
    true
}

fn as_edges(pairs: &[(u32, u32)]) -> Vec<OrderEdge> {
    pairs
        .iter()
        .enumerate()
        .map(|(i, &(from, to))| OrderEdge { from, to, atom: i })
        .collect()
}

/// Compares the checker against brute force on one edge set and, on
/// conflicts, checks the reported core is itself cyclic.
fn check_against_brute(pairs: &[(u32, u32)]) {
    let truth = embeds_in_total_order(pairs);
    match check_orders(&as_edges(pairs)) {
        TheoryResult::Consistent => {
            assert!(truth, "checker said consistent, brute force disagrees: {pairs:?}");
        }
        TheoryResult::Conflict(atoms) => {
            assert!(!truth, "checker said conflict, brute force disagrees: {pairs:?}");
            let core: Vec<(u32, u32)> = atoms.iter().map(|&i| pairs[i]).collect();
            assert!(
                !embeds_in_total_order(&core),
                "conflict core {core:?} is not actually cyclic ({pairs:?})"
            );
        }
    }
}

/// All 2^6 subsets of the oriented pairs over 3 events.
#[test]
fn exhaustive_three_events() {
    let universe: Vec<(u32, u32)> = (0..3u32)
        .flat_map(|a| (0..3u32).filter(move |&b| b != a).map(move |b| (a, b)))
        .collect();
    assert_eq!(universe.len(), 6);
    for mask in 0u32..(1 << universe.len()) {
        let pairs: Vec<(u32, u32)> = universe
            .iter()
            .enumerate()
            .filter(|&(i, _)| mask & (1 << i) != 0)
            .map(|(_, &p)| p)
            .collect();
        check_against_brute(&pairs);
    }
}

/// All 2^12 subsets of the oriented pairs over 4 events.
#[test]
fn exhaustive_four_events() {
    let universe: Vec<(u32, u32)> = (0..4u32)
        .flat_map(|a| (0..4u32).filter(move |&b| b != a).map(move |b| (a, b)))
        .collect();
    assert_eq!(universe.len(), 12);
    for mask in 0u32..(1 << universe.len()) {
        let pairs: Vec<(u32, u32)> = universe
            .iter()
            .enumerate()
            .filter(|&(i, _)| mask & (1 << i) != 0)
            .map(|(_, &p)| p)
            .collect();
        check_against_brute(&pairs);
    }
}

/// Self-loops can never embed in a strict total order.
#[test]
fn self_loops_always_conflict() {
    for e in 0..6u32 {
        let pairs = [(e, e)];
        assert!(!embeds_in_total_order(&pairs));
        assert!(matches!(
            check_orders(&as_edges(&pairs)),
            TheoryResult::Conflict(_)
        ));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Random edge multisets over up to 6 events: the checker's verdict
    /// must match the ∃-permutation brute force, and any conflict core
    /// must itself be cyclic.
    #[test]
    fn random_edge_sets_match_brute_force(
        pairs in proptest::collection::vec((0u32..6, 0u32..6), 0..14)
    ) {
        check_against_brute(&pairs);
    }
}
