//! # canary-core
//!
//! The end-to-end Canary pipeline (Fig. 1 of the paper):
//!
//! ```text
//! concurrent program ──▶ data dependence (Alg. 1) ──▶ VFG
//!                        interference dependence (Alg. 2) ──▶ VFG
//!                        source-sink checking (§5) + SMT ──▶ bug reports
//! ```
//!
//! [`Canary`] wires the substrate crates together and exposes one-call
//! analysis with per-phase metrics, which is also what the benchmark
//! harness samples to regenerate the paper's figures.
//!
//! # Examples
//!
//! Analyzing the paper's Fig. 2 program (bug-free — the report list is
//! empty because the SMT stage refutes the contradictory guards):
//!
//! ```
//! use canary_core::Canary;
//!
//! let src = r#"
//!     fn main(a) {
//!         x = alloc o1;
//!         *x = a;
//!         fork t thread1(x);
//!         if (theta1) { c = *x; use c; }
//!     }
//!     fn thread1(y) {
//!         b = alloc o2;
//!         if (!theta1) { *y = b; free b; }
//!     }
//! "#;
//! let outcome = Canary::new().analyze_source(src)?;
//! assert!(outcome.reports.is_empty());
//! assert!(outcome.metrics.interference_edges >= 1);
//! # Ok::<(), canary_core::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;
use std::time::{Duration, Instant};

use canary_dataflow::FuncProfile;
use canary_detect::{
    AuditLog, BugKind, BugReport, DetectContext, DetectOptions, DetectStats, Disposition,
    QueryProfile, RefutedCandidate,
};
use canary_interference::{InterferenceOptions, InterferenceResult, PruneReason};
use canary_ir::{
    clone_contexts, CallGraph, CloneOptions, MhpAnalysis, ParseError, ParseOptions, Program,
    ThreadStructure, ValidationError,
};
use canary_smt::TermPool;
use canary_trace::{LogLevel, Tracer, LANE_PIPELINE};

pub use canary_detect::{self as detect};
pub use canary_ir::{self as ir};
pub use canary_oracle::{self as oracle};
pub use canary_smt::{self as smt};
pub use canary_trace::{self as trace};

/// Pipeline configuration.
#[derive(Clone, Debug)]
pub struct CanaryConfig {
    /// Front-end bounding options (loop unrolling depth, §3.1/§6).
    pub parse: ParseOptions,
    /// Alg. 2 options (MHP pruning toggle, fixpoint cap).
    pub interference: InterferenceOptions,
    /// Checker options (§5.2 solver strategy, inter-thread filter,
    /// §9 synchronization constraints).
    pub detect: DetectOptions,
    /// Which properties to check.
    pub checkers: Vec<BugKind>,
    /// Clone-based context sensitivity depth (§5.1; the paper's §7.2
    /// uses 6). Zero disables the transform; when non-zero the program
    /// is rewritten before analysis and reports reference the rewritten
    /// labels (the transformed program travels in the outcome).
    pub context_depth: usize,
    /// Worker threads for the parallel front-end (level-parallel Alg. 1
    /// tasks, sharded Alg. 2 rounds) and, unless overridden there, the
    /// SMT portfolio. Every phase is deterministic: output is
    /// byte-identical for any value, threads only change wall time.
    /// Defaults to `1`, or to `CANARY_TEST_THREADS` when set (so test
    /// suites can sweep worker counts without code changes).
    pub threads: usize,
    /// Concretely replay each confirmed report's witness schedule with
    /// the `canary-oracle` interpreter and record the outcomes in
    /// [`AnalysisOutcome::witness_replays`]. Off by default (the static
    /// result is unchanged; this buys executable evidence at the cost
    /// of one interpreter run per report).
    pub verify_witnesses: bool,
    /// Resident-set budget (MiB) for cold analysis artifacts. When set,
    /// per-function summaries — dead weight once the VFG is built — are
    /// spilled to an on-disk store (`canary-store`) before detection,
    /// with an LRU resident set capped at this budget, and the
    /// `canary_spill_*` gauges report the (deterministic) accounting.
    /// `None` (the default) keeps everything in memory. Findings are
    /// identical either way.
    pub memory_budget_mb: Option<u64>,
}

impl Default for CanaryConfig {
    fn default() -> Self {
        CanaryConfig {
            parse: ParseOptions::default(),
            interference: InterferenceOptions::default(),
            detect: DetectOptions::default(),
            checkers: vec![
                BugKind::UseAfterFree,
                BugKind::DoubleFree,
                BugKind::NullDeref,
                BugKind::DataLeak,
                BugKind::DoubleLock,
                BugKind::ConflictLock,
            ],
            context_depth: 0,
            threads: default_threads(),
            verify_witnesses: false,
            memory_budget_mb: None,
        }
    }
}

/// The default worker count: `CANARY_TEST_THREADS` when set and valid,
/// else 1 (serial).
fn default_threads() -> usize {
    std::env::var("CANARY_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Wall time and scheduling shape of one parallel phase, for the
/// scaling charts in `crates/bench`.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseStats {
    /// Wall-clock time of the phase.
    pub wall: Duration,
    /// Worker threads the phase was configured with.
    pub workers: usize,
    /// Independent work items the phase executed (call-graph SCC tasks
    /// for Alg. 1; `Pted` sweeps plus per-load scans for Alg. 2; SMT
    /// queries for detection).
    pub tasks: usize,
    /// Process peak RSS in bytes, sampled at phase end (`VmHWM`, a
    /// monotone high-water mark — see
    /// [`canary_trace::metrics::peak_rss_bytes`]). **Volatile**: never
    /// compared across runs; 0 where the platform has no accounting.
    pub peak_rss: u64,
}

/// Per-run measurements, the raw material for the Fig. 7/8 harnesses.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Statements in the bounded program.
    pub stmt_count: usize,
    /// Static threads.
    pub thread_count: usize,
    /// VFG node count after both analyses.
    pub vfg_nodes: usize,
    /// VFG edge count after both analyses.
    pub vfg_edges: usize,
    /// Interference edges added by Alg. 2.
    pub interference_edges: usize,
    /// Store/load pairs discharged by lock-based mutual-exclusion
    /// sharpening during Alg. 2.
    pub mhp_lock_pruned: usize,
    /// Escaped objects found.
    pub escaped_objects: usize,
    /// Approximate VFG bytes (Fig. 7b accounting).
    pub vfg_bytes: usize,
    /// Interned SMT terms (guard memory).
    pub term_count: usize,
    /// Approximate term-table bytes (Fig. 7b guard-memory accounting;
    /// deterministic, unlike the RSS gauges).
    pub term_bytes: usize,
    /// Time in Alg. 1.
    pub t_dataflow: Duration,
    /// Time in Alg. 2.
    pub t_interference: Duration,
    /// Time in §5 checking (path search + SMT).
    pub t_detect: Duration,
    /// Candidate paths / SMT queries / confirmed reports.
    pub detect: DetectStats,
    /// Worker threads the front-end ran with.
    pub worker_threads: usize,
    /// Scheduling shape of the Alg. 1 phase.
    pub dataflow_phase: PhaseStats,
    /// Scheduling shape of the Alg. 2 phase.
    pub interference_phase: PhaseStats,
    /// Scheduling shape of the §5 detection phase (tasks = SMT
    /// queries, workers = parallel solver threads).
    pub detect_phase: PhaseStats,
    /// Witness schedules replayed by the concrete oracle (0 unless
    /// [`CanaryConfig::verify_witnesses`] is on).
    pub witnesses_checked: usize,
    /// Replays that concretely fired the claimed bug.
    pub witnesses_confirmed: usize,
    /// Fingerprint-equal findings collapsed before emission (the same
    /// bug surfacing through several checkers or paths).
    pub reports_deduped: usize,
    /// Per-function Alg. 1 cost profiles, in commit order.
    pub func_profiles: Vec<FuncProfile>,
    /// Per-SMT-query attribution records, in checker/query order.
    pub query_profiles: Vec<QueryProfile>,
    /// Spill-store accounting when [`CanaryConfig::memory_budget_mb`]
    /// is set (all-zero otherwise). Deterministic: driven by encoded
    /// byte sizes and the budget, never by OS memory accounting.
    pub spill: canary_store::SpillGauges,
    /// The run-wide audit log: one terminal disposition, with a
    /// machine-checkable certificate, for every candidate source/sink
    /// pair any pipeline layer considered. The JSONL export
    /// (`--audit-out`) and `canary why-not` read from here; its
    /// records are byte-identical across every scheduling and strategy
    /// knob. The per-worker `dispatch_loads` it also carries are
    /// timing-dependent and surface only as the volatile
    /// `canary_dispatch_*` registry family.
    pub audit: AuditLog,
}

impl Metrics {
    /// Total VFG-construction time (the Fig. 7a quantity).
    pub fn t_vfg(&self) -> Duration {
        self.t_dataflow + self.t_interference
    }

    /// Total end-to-end time (the Fig. 8 quantity).
    pub fn t_total(&self) -> Duration {
        self.t_vfg() + self.t_detect
    }

    /// The `k` most expensive SMT queries, hottest first. Ranked by
    /// deterministic solver-work counters (decisions, then conflicts,
    /// then propagations) rather than wall time, so the selection is
    /// byte-identical across worker counts; candidate labels break
    /// ties.
    pub fn hottest_queries(&self, k: usize) -> Vec<&QueryProfile> {
        let mut v: Vec<&QueryProfile> = self.query_profiles.iter().collect();
        v.sort_by_key(|p| {
            (
                std::cmp::Reverse((p.decisions, p.conflicts, p.propagations)),
                p.source.0,
                p.sink.0,
                p.kind as u64,
            )
        });
        v.truncate(k);
        v
    }

    /// The `k` most expensive Alg. 1 function analyses, hottest first.
    /// Ranked by statement visits then transfer-function size (both
    /// deterministic); the function index breaks ties.
    pub fn hottest_functions(&self, k: usize) -> Vec<&FuncProfile> {
        let mut v: Vec<&FuncProfile> = self.func_profiles.iter().collect();
        v.sort_by_key(|p| (std::cmp::Reverse((p.stmt_visits, p.summary_cells)), p.func));
        v.truncate(k);
        v
    }

    /// Builds the run-health [`MetricsRegistry`] from this run's
    /// measurements: the canonical export surface behind
    /// `--metrics-out` and the `metrics.registry` JSON block.
    ///
    /// Family classification (see `canary_trace::metrics`): everything
    /// is deterministic across `--threads` values; the `*_seconds` and
    /// `*_rss_*` families are volatile (wall clock / OS accounting) and
    /// the `canary_solver_*` families are strategy-sensitive (the CDCL
    /// work the incremental back-end saves).
    ///
    /// [`MetricsRegistry`]: canary_trace::metrics::MetricsRegistry
    pub fn to_registry(&self) -> canary_trace::metrics::MetricsRegistry {
        use canary_trace::metrics::{MetricsRegistry, DECISION_BUCKETS, SECONDS_BUCKETS};
        let mut reg = MetricsRegistry::new();
        let g = |reg: &mut MetricsRegistry, name, help, v: f64| {
            reg.set_gauge(name, help, &[], v);
        };
        g(&mut reg, "canary_program_statements", "Statements in the bounded program", self.stmt_count as f64);
        g(&mut reg, "canary_program_threads", "Static threads in the program", self.thread_count as f64);
        g(&mut reg, "canary_vfg_nodes", "VFG nodes after Alg. 1 + Alg. 2", self.vfg_nodes as f64);
        g(&mut reg, "canary_vfg_edges", "VFG edges after Alg. 1 + Alg. 2", self.vfg_edges as f64);
        g(&mut reg, "canary_vfg_interference_edges", "Interference edges added by Alg. 2", self.interference_edges as f64);
        g(&mut reg, "canary_vfg_bytes", "Approximate VFG arena bytes (deterministic)", self.vfg_bytes as f64);
        g(&mut reg, "canary_term_table_terms", "Interned SMT terms", self.term_count as f64);
        g(&mut reg, "canary_term_table_bytes", "Approximate term-table bytes (deterministic)", self.term_bytes as f64);
        g(&mut reg, "canary_escaped_objects", "Escaped objects found by Alg. 2", self.escaped_objects as f64);
        g(&mut reg, "canary_worker_threads", "Configured front-end worker threads", self.worker_threads as f64);

        let c = |reg: &mut MetricsRegistry, name, help, v: f64| {
            reg.add_counter(name, help, &[], v);
        };
        c(&mut reg, "canary_mhp_lock_pruned", "Store/load pairs discharged by lock-based MHP sharpening", self.mhp_lock_pruned as f64);
        let d = &self.detect;
        c(&mut reg, "canary_detect_candidate_paths", "Candidate source-sink paths enumerated", d.candidate_paths as f64);
        c(&mut reg, "canary_detect_queries", "SMT queries issued", d.queries as f64);
        c(&mut reg, "canary_detect_prefiltered", "Queries answered by the semi-decision prefilter", d.prefiltered as f64);
        c(&mut reg, "canary_detect_confirmed", "Reports surviving SMT validation (pre-dedup)", d.confirmed as f64);
        c(&mut reg, "canary_detect_reports_deduped", "Fingerprint-equal findings collapsed before emission", self.reports_deduped as f64);
        c(&mut reg, "canary_detect_witnesses_checked", "Witness schedules replayed by the oracle", self.witnesses_checked as f64);
        c(&mut reg, "canary_detect_witnesses_confirmed", "Replays that concretely fired the claimed bug", self.witnesses_confirmed as f64);
        c(&mut reg, "canary_solver_decisions", "CDCL decisions across all validation queries", d.decisions as f64);
        c(&mut reg, "canary_solver_conflicts", "CDCL conflicts across all validation queries", d.conflicts as f64);
        c(&mut reg, "canary_solver_propagations", "Unit propagations across all validation queries", d.propagations as f64);
        c(&mut reg, "canary_solver_learned", "Learned clauses retained across all validation queries", d.learned as f64);
        c(&mut reg, "canary_solver_theory_lemmas", "Theory (order-cycle) lemmas fed back", d.theory_lemmas as f64);
        c(&mut reg, "canary_solver_families", "Query families formed by the incremental strategy", d.families as f64);
        c(&mut reg, "canary_solver_memo_hits", "Queries answered from the hash-consed result memo", d.memo_hits as f64);
        c(&mut reg, "canary_solver_core_subsumed", "Queries refuted by UNSAT-core subsumption", d.core_subsumed as f64);
        c(&mut reg, "canary_solver_incremental_queries", "Queries solved on a persistent family solver", d.incremental as f64);
        c(&mut reg, "canary_solver_clauses_retained", "Learned clauses alive on family solvers at family end", d.clauses_retained as f64);
        c(&mut reg, "canary_solver_cube_escalated", "Family members escalated to cube-and-conquer after blowing the conflict budget", d.cube_escalated as f64);
        c(&mut reg, "canary_solver_shard_epochs", "Cache merge barriers (shard epochs) executed by the query dispatcher", d.epochs as f64);

        // Audit-layer disposition totals: deterministic (derived from
        // term-determined certificates), so they live in the canonical
        // family set and the `candidates == reported + deduped + Σ
        // pruned` reconciliation can be checked from an export alone.
        let a = self.audit.reconcile().unwrap_or_default();
        c(&mut reg, "canary_audit_candidates", "Detect-layer candidates given a terminal audit disposition", a.candidates as f64);
        c(&mut reg, "canary_audit_reported", "Audit dispositions: confirmed and emitted", a.reported as f64);
        c(&mut reg, "canary_audit_deduped", "Audit dispositions: confirmed but collapsed into an equivalent finding", a.deduped as f64);
        c(&mut reg, "canary_audit_prefiltered", "Audit dispositions: killed by the construction/semi-decision prefilter", a.prefiltered as f64);
        c(&mut reg, "canary_audit_unsat", "Audit dispositions: refuted by solving or UNSAT-core subsumption", a.unsat as f64);
        c(&mut reg, "canary_audit_memoized", "Audit dispositions: refuted by the verdict memo", a.memoized as f64);
        c(&mut reg, "canary_audit_scope_filtered", "Audit dispositions: dropped by --inter-thread-only", a.scope_filtered as f64);
        c(&mut reg, "canary_audit_path_budget", "Path-budget truncation markers recorded by the audit layer", a.path_budget as f64);
        c(&mut reg, "canary_audit_pruned_mhp", "Interference pairs pruned by plain MHP", a.pruned_mhp as f64);
        c(&mut reg, "canary_audit_pruned_lock", "Interference pairs pruned by lock-sharpened MHP", a.pruned_lock as f64);
        c(&mut reg, "canary_audit_pruned_order", "Interference pairs refuted by program order", a.pruned_order as f64);

        // Per-worker dispatcher loads: timing-dependent (work stealing
        // follows the OS scheduler), so the family is *volatile* — the
        // determinism normalizers drop `canary_dispatch_*` wholesale.
        // Emitted only when a work-stealing dispatch ran (the fresh
        // strategy never populates it), mirroring the spill gauges.
        if !self.audit.dispatch_loads.is_empty() {
            for (i, l) in self.audit.dispatch_loads.iter().enumerate() {
                let worker = i.to_string();
                let labels = [("worker", worker.as_str())];
                reg.set_gauge(
                    "canary_dispatch_worker_families",
                    "Query families a dispatcher worker solved (volatile)",
                    &labels,
                    l.families as f64,
                );
                reg.set_gauge(
                    "canary_dispatch_worker_stolen",
                    "Query families a dispatcher worker stole from siblings (volatile)",
                    &labels,
                    l.stolen as f64,
                );
            }
        }

        // Spill gauges are emitted only when a budget armed the store:
        // absent families keep budget-less runs byte-comparable with
        // historical exports.
        if self.spill.budget_bytes > 0 || self.spill.entries > 0 {
            let s = &self.spill;
            g(&mut reg, "canary_spill_budget_bytes", "Configured resident-set byte budget for spilled artifacts", s.budget_bytes as f64);
            g(&mut reg, "canary_spill_bytes_written", "Bytes appended to the spill store's backing file", s.bytes_written as f64);
            g(&mut reg, "canary_spill_entries", "Distinct entries held by the spill store", s.entries as f64);
            g(&mut reg, "canary_spill_evictions", "Resident entries dropped to stay within the byte budget", s.evictions as f64);
            g(&mut reg, "canary_spill_reloads", "Entry fetches served from disk after eviction", s.reloads as f64);
            g(&mut reg, "canary_spill_resident_bytes", "Bytes held by the spill store's resident set at run end", s.resident_bytes as f64);
        }

        for (phase, s) in [
            ("dataflow", &self.dataflow_phase),
            ("interference", &self.interference_phase),
            ("detect", &self.detect_phase),
        ] {
            let labels = [("phase", phase)];
            reg.set_gauge("canary_phase_workers", "Worker threads the phase ran with", &labels, s.workers as f64);
            reg.set_gauge("canary_phase_tasks", "Independent work items the phase executed", &labels, s.tasks as f64);
            reg.set_gauge("canary_phase_wall_seconds", "Phase wall-clock time (volatile)", &labels, s.wall.as_secs_f64());
            reg.set_gauge("canary_phase_peak_rss_bytes", "Process peak RSS at phase end (volatile)", &labels, s.peak_rss as f64);
        }

        for p in &self.query_profiles {
            let kind = p.kind.to_string();
            let labels = [("kind", kind.as_str())];
            reg.observe(
                "canary_solver_query_decisions",
                "CDCL decisions per SMT query, by query family",
                &labels,
                &DECISION_BUCKETS,
                p.decisions as f64,
            );
            reg.observe(
                "canary_smt_query_seconds",
                "Solve wall time per SMT query, by query family (volatile)",
                &labels,
                &SECONDS_BUCKETS,
                p.wall.as_secs_f64(),
            );
        }
        reg
    }
}

/// The result of one analysis run.
#[derive(Debug)]
pub struct AnalysisOutcome {
    /// Confirmed findings, sorted by (source, sink).
    pub reports: Vec<BugReport>,
    /// Per-phase measurements.
    pub metrics: Metrics,
    /// The context-cloned program actually analyzed, when
    /// [`CanaryConfig::context_depth`] > 0 (report labels refer to it).
    pub analyzed_program: Option<Program>,
    /// Dismissed candidates with minimized refutation cores, when
    /// [`DetectOptions::explain_refutations`] is on.
    pub refuted: Vec<RefutedCandidate>,
    /// Per-report concrete replay outcomes, aligned with `reports`,
    /// when [`CanaryConfig::verify_witnesses`] is on (empty otherwise).
    /// The replay runs against the analyzed (possibly context-cloned)
    /// program, matching the labels the reports use.
    pub witness_replays: Vec<canary_oracle::ReplayResult>,
}

impl AnalysisOutcome {
    /// Renders every report against the program (using the cloned
    /// program when context sensitivity rewrote it).
    pub fn render(&self, prog: &Program) -> String {
        let prog = self.analyzed_program.as_ref().unwrap_or(prog);
        self.reports
            .iter()
            .map(|r| r.render(prog))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Errors surfaced by the facade.
#[derive(Debug)]
pub enum Error {
    /// The source text failed to parse.
    Parse(ParseError),
    /// The parsed program violates the bounded-program invariants.
    Validation(ValidationError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "{e}"),
            Error::Validation(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<ParseError> for Error {
    fn from(e: ParseError) -> Self {
        Error::Parse(e)
    }
}

impl From<ValidationError> for Error {
    fn from(e: ValidationError) -> Self {
        Error::Validation(e)
    }
}

/// The Canary analyzer.
#[derive(Clone, Debug, Default)]
pub struct Canary {
    config: CanaryConfig,
}

impl Canary {
    /// An analyzer with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// An analyzer with explicit configuration.
    pub fn with_config(config: CanaryConfig) -> Self {
        Canary { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &CanaryConfig {
        &self.config
    }

    /// Parses, validates and analyzes source text.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Parse`] or [`Error::Validation`] for malformed
    /// input.
    pub fn analyze_source(&self, src: &str) -> Result<AnalysisOutcome, Error> {
        let prog = canary_ir::parse_with(src, &self.config.parse)?;
        prog.validate()?;
        Ok(self.analyze(&prog))
    }

    /// Analyzes an already-built bounded program, applying clone-based
    /// context sensitivity first when configured.
    pub fn analyze(&self, prog: &Program) -> AnalysisOutcome {
        self.analyze_traced(prog, &Tracer::disabled())
    }

    /// [`analyze`](Self::analyze) with spans collected into `tracer`:
    /// pipeline-phase spans on the pipeline lane, plus the per-level /
    /// per-round / per-query instrumentation of every phase crate. With
    /// a disabled tracer this *is* `analyze`.
    pub fn analyze_traced(&self, prog: &Program, tracer: &Tracer) -> AnalysisOutcome {
        if self.config.context_depth > 0 {
            let cloned = clone_contexts(
                prog,
                &CloneOptions {
                    depth: self.config.context_depth,
                    ..CloneOptions::default()
                },
            );
            let mut outcome = self.analyze_uncloned(&cloned, tracer);
            outcome.analyzed_program = Some(cloned);
            return outcome;
        }
        self.analyze_uncloned(prog, tracer)
    }

    fn analyze_uncloned(&self, prog: &Program, tracer: &Tracer) -> AnalysisOutcome {
        let (mut pool, mut df, ir_result, cg, ts, metrics0) = self.build_vfg_traced(prog, tracer);
        let mhp = MhpAnalysis::new(prog, &cg, &ts);
        let mut metrics = metrics0;

        // Seed the run-wide audit log with the interference layer's
        // pruned store/load pairs — candidates suppressed before any
        // VFG edge (and hence any detect candidate) could exist. The
        // fixpoint commits them in (store, load) order, so the audit
        // sequence is deterministic.
        let mut audit = AuditLog::new();
        for p in &ir_result.pruned_pairs {
            let d = match p.reason {
                PruneReason::Mhp {
                    parallel,
                    ordered_before,
                } => Disposition::PrunedMhp {
                    parallel,
                    ordered_before,
                },
                PruneReason::LockSharpen {
                    class,
                    killing_store,
                } => Disposition::PrunedLockSharpen {
                    class,
                    killing_store,
                },
                PruneReason::StoreAfterLoad => Disposition::PrunedStoreOrder,
            };
            audit.record_interference_prune(
                p.store,
                p.load,
                Some(prog.obj_name(p.object).to_string()),
                d,
            );
        }

        // Bounded-memory mode: once the VFG is built the per-function
        // summaries are dead weight (the checkers only consult the VFG),
        // so spill them to the on-disk store before detection allocates
        // its solver structures. The store keeps an LRU resident set
        // within the configured budget; findings are unchanged either
        // way, and the gauges are deterministic (driven by encoded byte
        // sizes, never by OS accounting).
        let _spill_store = self.config.memory_budget_mb.map(|mb| {
            let budget = mb.saturating_mul(1024 * 1024);
            match canary_store::SpillStore::with_budget(budget) {
                Ok(mut store) => {
                    let summaries = std::mem::take(&mut df.summaries);
                    let mut io_err = None;
                    for (i, s) in summaries.iter().enumerate() {
                        let bytes = canary_dataflow::encode_summary(s);
                        if let Err(e) = store.put(i as u32, bytes) {
                            io_err = Some(e);
                            break;
                        }
                    }
                    metrics.spill = store.gauges();
                    canary_trace::log(LogLevel::Summary, || {
                        let g = metrics.spill;
                        let err = io_err
                            .as_ref()
                            .map(|e| format!(", aborted on io error: {e}"))
                            .unwrap_or_default();
                        format!(
                            "spill: {} summar(ies), {} byte(s) written, \
                             {} evicted, {} resident byte(s) (budget {} MiB){err}",
                            g.entries, g.bytes_written, g.evictions, g.resident_bytes, mb
                        )
                    });
                    Some(store)
                }
                Err(e) => {
                    canary_trace::log(LogLevel::Summary, || {
                        format!("spill: store unavailable ({e}); summaries stay in memory")
                    });
                    None
                }
            }
        });

        let t0 = Instant::now();
        // One `threads` knob rules the whole pipeline: lift it into the
        // SMT portfolio too, unless the solver was tuned separately.
        let mut detect_opts = self.config.detect.clone();
        detect_opts.solver.num_threads = detect_opts.solver.num_threads.max(self.config.threads.max(1));
        let ctx = DetectContext::new(prog, &ts, &mhp, &df, &detect_opts);
        let mut stats = DetectStats::default();
        let mut reports = Vec::new();
        let mut refuted = Vec::new();
        let mut query_profiles = Vec::new();
        {
            let mut phase = tracer.span(LANE_PIPELINE, "pipeline", 2, || "detect".into());
            // One query cache for the whole run: UNSAT cores and
            // memoized verdicts learned by one checker refute later
            // checkers' queries. Checkers run sequentially, so the
            // cross-checker reuse is deterministic.
            let mut qcache = canary_smt::QueryCache::new();
            let total_checkers = self.config.checkers.len();
            for (done, &kind) in self.config.checkers.iter().enumerate() {
                let (rs, refs, profs) = canary_detect::check_kind_traced(
                    &ctx,
                    &mut pool,
                    kind,
                    &detect_opts,
                    &mut stats,
                    tracer,
                    &mut qcache,
                    &mut audit,
                );
                reports.extend(rs);
                refuted.extend(refs);
                query_profiles.extend(profs);
                canary_trace::log(LogLevel::Summary, || {
                    let done = done + 1;
                    let elapsed = t0.elapsed();
                    let eta = if done < total_checkers {
                        // Linear extrapolation over checkers done so far;
                        // coarse, but checkers share the query cache so
                        // later ones only get cheaper.
                        format!(
                            ", eta {:?}",
                            elapsed.mul_f64(total_checkers as f64 / done as f64) - elapsed
                        )
                    } else {
                        String::new()
                    };
                    format!(
                        "detect: checker {done}/{total_checkers} ({kind}) done, \
                         {} quer(ies), {} report(s) in {elapsed:?}{eta}",
                        stats.queries, stats.confirmed
                    )
                });
            }
            phase.record("queries", stats.queries as u64);
            phase.record("confirmed", stats.confirmed as u64);
        }
        // Collapse fingerprint-equal findings (the same bug surfacing
        // through several checkers or paths) to their shortest witness
        // before anything downstream — replay, rendering, export —
        // sees them. Checkers emit in a fixed order, so the surviving
        // order is deterministic.
        let confirmed_raw = reports.len();
        let reports = canary_detect::dedup_reports(prog, reports);
        metrics.reports_deduped = confirmed_raw - reports.len();
        // Flip audit records whose report lost the fingerprint dedup to
        // `Deduped`, then check the reconciliation invariant: every
        // candidate has exactly one terminal disposition. A leak here
        // is a pipeline bug, not an input problem.
        let kept: std::collections::HashSet<(BugKind, canary_ir::Label, canary_ir::Label)> =
            reports.iter().map(|r| (r.kind, r.source, r.sink)).collect();
        audit.apply_report_dedup(&kept);
        debug_assert!(
            audit.reconcile().is_ok(),
            "{}",
            audit.reconcile().unwrap_err()
        );
        canary_trace::log(LogLevel::Summary, || {
            format!(
                "detect: {} quer(ies), {} report(s) in {:?}",
                stats.queries,
                stats.confirmed,
                t0.elapsed()
            )
        });
        metrics.t_detect = t0.elapsed();
        metrics.detect_phase = PhaseStats {
            wall: metrics.t_detect,
            workers: detect_opts.solver.num_threads,
            tasks: stats.queries,
            peak_rss: canary_trace::metrics::peak_rss_bytes(),
        };
        metrics.detect = stats;
        metrics.term_count = pool.len();
        metrics.term_bytes = pool.approx_bytes();
        metrics.query_profiles = query_profiles;
        metrics.audit = audit;
        let witness_replays = if self.config.verify_witnesses {
            // Replay runs under the same memory model the detector
            // analyzed: a TSO/PSO witness may invert program order and
            // only the store-buffer machine can realize it.
            let model = self.config.detect.memory_model;
            let replays: Vec<canary_oracle::ReplayResult> = reports
                .iter()
                .map(|r| canary_oracle::replay_report_under(prog, model, r))
                .collect();
            metrics.witnesses_checked = replays.len();
            metrics.witnesses_confirmed = replays.iter().filter(|r| r.confirmed()).count();
            replays
        } else {
            Vec::new()
        };
        AnalysisOutcome {
            reports,
            metrics,
            analyzed_program: None,
            refuted,
            witness_replays,
        }
    }

    /// Runs only the VFG-construction phases (Alg. 1 + Alg. 2); the
    /// Fig. 7 comparison measures exactly this.
    #[allow(clippy::type_complexity)]
    pub fn build_vfg(
        &self,
        prog: &Program,
    ) -> (
        TermPool,
        canary_dataflow::DataflowResult,
        InterferenceResult,
        CallGraph,
        ThreadStructure,
        Metrics,
    ) {
        self.build_vfg_traced(prog, &Tracer::disabled())
    }

    /// [`build_vfg`](Self::build_vfg) with spans collected into `tracer`.
    #[allow(clippy::type_complexity)]
    pub fn build_vfg_traced(
        &self,
        prog: &Program,
        tracer: &Tracer,
    ) -> (
        TermPool,
        canary_dataflow::DataflowResult,
        InterferenceResult,
        CallGraph,
        ThreadStructure,
        Metrics,
    ) {
        let threads = self.config.threads.max(1);
        let mut metrics = Metrics {
            stmt_count: prog.stmt_count(),
            thread_count: prog.threads.len(),
            worker_threads: threads,
            ..Metrics::default()
        };
        let mut pool = TermPool::new();

        let t0 = Instant::now();
        let cg = CallGraph::build(prog);
        let ts = ThreadStructure::compute(prog, &cg);
        let mut df = {
            let mut phase = tracer.span(LANE_PIPELINE, "pipeline", 0, || "alg1".into());
            let df = canary_dataflow::run_traced(prog, &cg, &mut pool, threads, tracer);
            phase.record("tasks", df.tasks as u64);
            phase.record("functions", df.func_profiles.len() as u64);
            df
        };
        metrics.t_dataflow = t0.elapsed();
        metrics.dataflow_phase = PhaseStats {
            wall: metrics.t_dataflow,
            workers: threads,
            tasks: df.tasks,
            peak_rss: canary_trace::metrics::peak_rss_bytes(),
        };
        canary_trace::log(LogLevel::Summary, || {
            format!(
                "alg1: {} task(s) over {} function(s) in {:?}",
                df.tasks,
                df.func_profiles.len(),
                metrics.t_dataflow
            )
        });

        let t1 = Instant::now();
        let mhp = MhpAnalysis::new(prog, &cg, &ts);
        // The pipeline-wide knob drives the interference shards unless
        // the phase options already ask for more.
        let mut iopts = self.config.interference.clone();
        iopts.threads = iopts.threads.max(threads);
        let ir_result = {
            let mut phase = tracer.span(LANE_PIPELINE, "pipeline", 1, || "alg2".into());
            let r = canary_interference::run_traced(
                prog, &ts, &mhp, &mut df, &mut pool, &iopts, tracer,
            );
            phase.record("rounds", r.rounds as u64);
            phase.record("interference_edges", r.interference_edges as u64);
            phase.record("mhp_lock_pruned", r.mhp_lock_pruned as u64);
            phase.record("escaped", r.escaped.len() as u64);
            r
        };
        metrics.t_interference = t1.elapsed();
        metrics.interference_phase = PhaseStats {
            wall: metrics.t_interference,
            workers: iopts.threads,
            tasks: ir_result.tasks,
            peak_rss: canary_trace::metrics::peak_rss_bytes(),
        };
        canary_trace::log(LogLevel::Summary, || {
            format!(
                "alg2: {} round(s), {} interference edge(s) in {:?}",
                ir_result.rounds, ir_result.interference_edges, metrics.t_interference
            )
        });
        drop(mhp);

        metrics.vfg_nodes = df.vfg.node_count();
        metrics.vfg_edges = df.vfg.edge_count();
        metrics.interference_edges = df.vfg.interference_edge_count();
        metrics.mhp_lock_pruned = ir_result.mhp_lock_pruned;
        metrics.escaped_objects = ir_result.escaped.len();
        metrics.vfg_bytes = df.vfg.approx_bytes();
        metrics.term_count = pool.len();
        metrics.term_bytes = pool.approx_bytes();
        metrics.func_profiles = df.func_profiles.clone();
        (pool, df, ir_result, cg, ts, metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_checks_all_kinds() {
        let c = Canary::new();
        assert_eq!(c.config().checkers.len(), 6);
    }

    #[test]
    fn analyze_source_reports_sequential_uaf() {
        let outcome = Canary::new()
            .analyze_source("fn main() { p = alloc o; free p; use p; }")
            .unwrap();
        assert_eq!(outcome.reports.len(), 1);
        assert_eq!(outcome.reports[0].kind, BugKind::UseAfterFree);
        assert!(outcome.metrics.t_total() >= outcome.metrics.t_vfg());
        assert!(outcome.metrics.stmt_count >= 3);
    }

    #[test]
    fn parse_errors_surface() {
        let err = Canary::new().analyze_source("fn main() {").unwrap_err();
        assert!(matches!(err, Error::Parse(_)));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn metrics_capture_vfg_shape() {
        let outcome = Canary::new()
            .analyze_source(
                "fn main() { x = alloc o1; fork t w(x); c = *x; use c; }
                 fn w(y) { b = alloc o2; *y = b; }",
            )
            .unwrap();
        assert!(outcome.metrics.vfg_nodes > 0);
        assert!(outcome.metrics.vfg_edges > 0);
        assert!(outcome.metrics.interference_edges >= 1);
        assert!(outcome.metrics.escaped_objects >= 1);
        assert!(outcome.metrics.vfg_bytes > 0);
        assert!(outcome.metrics.term_count > 2);
    }

    #[test]
    fn render_mentions_kind() {
        let src = "fn main() { p = alloc o; free p; use p; }";
        let prog = canary_ir::parse(src).unwrap();
        let outcome = Canary::new().analyze(&prog);
        let text = outcome.render(&prog);
        assert!(text.contains("use-after-free"));
    }

    #[test]
    fn verify_witnesses_confirms_reports() {
        let config = CanaryConfig {
            verify_witnesses: true,
            ..CanaryConfig::default()
        };
        let outcome = Canary::with_config(config)
            .analyze_source(
                "fn main() { p = alloc o; fork t w(p); free p; }
                 fn w(q) { use q; }",
            )
            .unwrap();
        assert!(!outcome.reports.is_empty());
        assert_eq!(outcome.witness_replays.len(), outcome.reports.len());
        assert_eq!(
            outcome.metrics.witnesses_checked,
            outcome.reports.len()
        );
        assert_eq!(
            outcome.metrics.witnesses_confirmed,
            outcome.reports.len(),
            "replays: {:?}",
            outcome.witness_replays
        );
        assert!(outcome.witness_replays.iter().all(|r| r.confirmed()));
    }

    #[test]
    fn verification_off_by_default() {
        let outcome = Canary::new()
            .analyze_source("fn main() { p = alloc o; free p; use p; }")
            .unwrap();
        assert!(outcome.witness_replays.is_empty());
        assert_eq!(outcome.metrics.witnesses_checked, 0);
    }

    #[test]
    fn memory_budget_spills_summaries_without_changing_findings() {
        let src = "fn main() { p = alloc o; fork t w(p); free p; }
                   fn w(q) { use q; }";
        let base = Canary::new().analyze_source(src).unwrap();
        assert_eq!(base.metrics.spill, canary_store::SpillGauges::default());
        let config = CanaryConfig {
            memory_budget_mb: Some(1),
            ..CanaryConfig::default()
        };
        let spilled = Canary::with_config(config).analyze_source(src).unwrap();
        assert_eq!(
            base.reports.len(),
            spilled.reports.len(),
            "spilling summaries must not change findings"
        );
        assert_eq!(spilled.metrics.spill.budget_bytes, 1 << 20);
        assert_eq!(spilled.metrics.spill.entries, 2, "one summary per function");
        assert!(spilled.metrics.spill.bytes_written > 0);
        // Determinism: a second identical run reports identical gauges.
        let config = CanaryConfig {
            memory_budget_mb: Some(1),
            ..CanaryConfig::default()
        };
        let again = Canary::with_config(config).analyze_source(src).unwrap();
        assert_eq!(again.metrics.spill, spilled.metrics.spill);
    }

    #[test]
    fn checker_subset_respected() {
        let config = CanaryConfig {
            checkers: vec![BugKind::DataLeak],
            ..CanaryConfig::default()
        };
        let outcome = Canary::with_config(config)
            .analyze_source("fn main() { p = alloc o; free p; use p; }")
            .unwrap();
        assert!(outcome.reports.is_empty());
    }
}
