//! Fingerprint-keyed run-to-run diffing: the regression-triage layer
//! behind `--baseline FILE` and `canary diff a.sarif b.sarif`.
//!
//! Two SARIF documents are compared by the stable content-addressed
//! fingerprints their results carry under `partialFingerprints` (key
//! [`FINGERPRINT_KEY`](crate::sarif::FINGERPRINT_KEY)). Because the
//! fingerprint hashes the *semantic shape* of a finding — kind,
//! statement text, function names, position-stripped path — and not
//! its labels, findings keep their identity across unrelated edits
//! that renumber the program.

use std::collections::BTreeSet;

use serde_json::Value;

use crate::sarif::FINGERPRINT_KEY;

/// One finding extracted from a SARIF document, reduced to what the
/// diff needs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FindingSummary {
    /// The `canary/v1` partial fingerprint (16 hex digits).
    pub fingerprint: String,
    /// The SARIF rule id (`canary/use-after-free`, …).
    pub rule: String,
    /// The result's message text.
    pub message: String,
}

/// The classification of two runs' findings.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SarifDiff {
    /// In the current run but not the baseline.
    pub new: Vec<FindingSummary>,
    /// In both runs (summaries taken from the current run).
    pub persisting: Vec<FindingSummary>,
    /// In the baseline but not the current run.
    pub fixed: Vec<FindingSummary>,
}

impl SarifDiff {
    /// Whether the current run introduced findings the baseline lacks
    /// — the condition CI gates on.
    pub fn has_new(&self) -> bool {
        !self.new.is_empty()
    }

    /// Human-readable classification, one line per finding plus a
    /// summary line; deterministic for deterministic inputs.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (tag, list) in [
            ("new", &self.new),
            ("fixed", &self.fixed),
            ("persisting", &self.persisting),
        ] {
            for f in list {
                out.push_str(&format!(
                    "[{tag}] {} {} {}\n",
                    f.fingerprint, f.rule, f.message
                ));
            }
        }
        out.push_str(&format!(
            "diff: {} new, {} fixed, {} persisting\n",
            self.new.len(),
            self.fixed.len(),
            self.persisting.len()
        ));
        out
    }
}

/// Extracts every result's fingerprint summary from a parsed SARIF
/// document, in document order.
///
/// # Errors
///
/// Returns a description of the first structural problem: missing
/// `runs`/`results` arrays or a result without the `canary/v1`
/// fingerprint (e.g. SARIF produced by another tool).
pub fn findings_of_sarif(doc: &Value) -> Result<Vec<FindingSummary>, String> {
    let runs = doc
        .get("runs")
        .and_then(Value::as_array)
        .ok_or("not a SARIF log: no `runs` array")?;
    let mut out = Vec::new();
    for (ri, run) in runs.iter().enumerate() {
        let results = run
            .get("results")
            .and_then(Value::as_array)
            .ok_or_else(|| format!("run {ri} has no `results` array"))?;
        for (i, res) in results.iter().enumerate() {
            let fingerprint = res
                .get("partialFingerprints")
                .and_then(|f| f.get(FINGERPRINT_KEY))
                .and_then(Value::as_str)
                .ok_or_else(|| {
                    format!("run {ri} result {i} lacks the `{FINGERPRINT_KEY}` fingerprint")
                })?
                .to_string();
            let rule = res
                .get("ruleId")
                .and_then(Value::as_str)
                .unwrap_or("<unknown rule>")
                .to_string();
            let message = res
                .get("message")
                .and_then(|m| m.get("text"))
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string();
            out.push(FindingSummary {
                fingerprint,
                rule,
                message,
            });
        }
    }
    Ok(out)
}

/// Classifies the current run's findings against a baseline run.
/// Order: `new` and `persisting` follow the current document's result
/// order, `fixed` follows the baseline's.
///
/// # Errors
///
/// Propagates [`findings_of_sarif`] errors from either document.
pub fn diff_sarif(baseline: &Value, current: &Value) -> Result<SarifDiff, String> {
    let base = findings_of_sarif(baseline)?;
    let cur = findings_of_sarif(current)?;
    let base_fps: BTreeSet<&str> = base.iter().map(|f| f.fingerprint.as_str()).collect();
    let cur_fps: BTreeSet<&str> = cur.iter().map(|f| f.fingerprint.as_str()).collect();
    let mut diff = SarifDiff::default();
    let mut seen_cur: BTreeSet<&str> = BTreeSet::new();
    for f in &cur {
        if !seen_cur.insert(f.fingerprint.as_str()) {
            continue;
        }
        if base_fps.contains(f.fingerprint.as_str()) {
            diff.persisting.push(f.clone());
        } else {
            diff.new.push(f.clone());
        }
    }
    let mut seen_base: BTreeSet<&str> = BTreeSet::new();
    for f in &base {
        if seen_base.insert(f.fingerprint.as_str()) && !cur_fps.contains(f.fingerprint.as_str()) {
            diff.fixed.push(f.clone());
        }
    }
    Ok(diff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn doc(fps: &[(&str, &str)]) -> Value {
        let results: Vec<Value> = fps
            .iter()
            .map(|&(fp, rule)| {
                json!({
                    "ruleId": rule,
                    "message": { "text": format!("finding {fp}") },
                    "partialFingerprints": { "canary/v1": fp },
                })
            })
            .collect();
        json!({ "version": "2.1.0", "runs": [{ "results": results }] })
    }

    #[test]
    fn classifies_new_fixed_persisting() {
        let base = doc(&[("aaaa", "canary/use-after-free"), ("bbbb", "canary/data-leak")]);
        let cur = doc(&[("bbbb", "canary/data-leak"), ("cccc", "canary/double-free")]);
        let d = diff_sarif(&base, &cur).unwrap();
        assert_eq!(d.new.len(), 1);
        assert_eq!(d.new[0].fingerprint, "cccc");
        assert_eq!(d.fixed.len(), 1);
        assert_eq!(d.fixed[0].fingerprint, "aaaa");
        assert_eq!(d.persisting.len(), 1);
        assert_eq!(d.persisting[0].fingerprint, "bbbb");
        assert!(d.has_new());
        let rendered = d.render();
        assert!(rendered.contains("[new] cccc"));
        assert!(rendered.contains("[fixed] aaaa"));
        assert!(rendered.contains("diff: 1 new, 1 fixed, 1 persisting"));
    }

    #[test]
    fn identical_runs_have_no_new_findings() {
        let a = doc(&[("aaaa", "r"), ("bbbb", "r")]);
        let d = diff_sarif(&a, &a).unwrap();
        assert!(!d.has_new());
        assert!(d.new.is_empty() && d.fixed.is_empty());
        assert_eq!(d.persisting.len(), 2);
    }

    #[test]
    fn duplicate_fingerprints_collapse() {
        let base = doc(&[]);
        let cur = doc(&[("aaaa", "r"), ("aaaa", "r")]);
        let d = diff_sarif(&base, &cur).unwrap();
        assert_eq!(d.new.len(), 1);
    }

    #[test]
    fn structural_errors_are_reported() {
        assert!(findings_of_sarif(&json!({"version": "2.1.0"})).is_err());
        let no_fp = json!({ "runs": [{ "results": [{ "ruleId": "r" }] }] });
        let err = findings_of_sarif(&no_fp).unwrap_err();
        assert!(err.contains("canary/v1"), "{err}");
    }

    #[test]
    fn empty_runs_diff_cleanly() {
        let d = diff_sarif(&doc(&[]), &doc(&[])).unwrap();
        assert_eq!(d, SarifDiff::default());
        assert!(d.render().contains("0 new, 0 fixed, 0 persisting"));
    }
}
