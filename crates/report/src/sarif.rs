//! SARIF 2.1.0 export (§7's practicality layer: machine-readable,
//! CI-consumable findings).
//!
//! One [`sarif_document`] call turns a run's reports into a
//! `sarifLog`: per-[`BugKind`] rule metadata, one `result` per report
//! with a stable `partialFingerprints` entry (the content-addressed
//! fingerprint of `canary-detect`), thread-aware `codeFlows` built
//! from the witness schedule (one `threadFlow` per static thread;
//! fork and join steps appear in *both* the executing and the
//! forked/joined thread's flow, making them explicit flow-join
//! points), and an `invocations` block carrying the run manifest.
//!
//! The bounded `.cir` programs carry no source positions, so regions
//! use the *statement label* as a 1-based line number (`l7` → line 8)
//! — a documented approximation that keeps locations stable and
//! clickable for the one-statement-per-line corpus programs.

use std::collections::BTreeMap;

use canary_detect::{BugKind, BugReport};
use canary_ir::{render_inst, CallGraph, Inst, Label, Program, ThreadStructure, MAIN_THREAD};
use serde_json::{json, Value};

/// The SARIF version emitted.
pub const SARIF_VERSION: &str = "2.1.0";

/// The `$schema` URI stamped on every document.
pub const SARIF_SCHEMA_URI: &str =
    "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/sarif-schema-2.1.0.json";

/// The `partialFingerprints` key carrying the Canary fingerprint; the
/// suffix is the fingerprint scheme version.
pub const FINGERPRINT_KEY: &str = "canary/v1";

/// Everything the invocation block records about how the run was
/// configured — the CLI fills this from its parsed flags and the
/// pipeline metrics.
#[derive(Clone, Debug, Default)]
pub struct RunManifest {
    /// The analyzed file, as given on the command line (artifact URI).
    pub file: String,
    /// [`content_hash`](crate::content_hash) of the source text.
    pub corpus_hash: String,
    /// Solver strategy (`fresh` / `incremental`).
    pub strategy: String,
    /// Front-end worker threads.
    pub threads: usize,
    /// Remaining configuration knobs as sorted `(key, value)` pairs.
    pub config: Vec<(String, String)>,
    /// The producing crate version (`CARGO_PKG_VERSION`), so diffed
    /// runs are traceable to a build.
    pub canary_version: String,
    /// The compiler that built the producing binary (`rustc --version`
    /// captured at build time; empty when unavailable).
    pub rustc_version: String,
    /// Phase wall times in milliseconds. **Nondeterministic** — these
    /// live under `invocations[0].properties.timings` so determinism
    /// checks can normalize exactly one subtree.
    pub timings_ms: Vec<(String, f64)>,
}

/// All rules the driver declares, in `ruleIndex` order (the `BugKind`
/// discriminant order, so `kind as usize` indexes this table).
const RULES: [(BugKind, &str, &str); 6] = [
    (
        BugKind::UseAfterFree,
        "UseAfterFree",
        "A freed value flows to a dereference that some sequentially \
         consistent interleaving can execute after the free.",
    ),
    (
        BugKind::DoubleFree,
        "DoubleFree",
        "The same abstract object flows to two free sites that some \
         interleaving can both execute.",
    ),
    (
        BugKind::NullDeref,
        "NullDereference",
        "A null value flows to a dereference along a satisfiable \
         guarded value-flow path.",
    ),
    (
        BugKind::DataLeak,
        "DataLeak",
        "Tainted data flows to a public sink along a satisfiable \
         guarded value-flow path.",
    ),
    (
        BugKind::DoubleLock,
        "DoubleLock",
        "A non-reentrant lock is re-acquired on a path where its \
         guard is still live, self-deadlocking the thread.",
    ),
    (
        BugKind::ConflictLock,
        "ConflictLock",
        "Two threads acquire the same pair of locks in conflicting \
         orders; some interleaving blocks both in a cycle.",
    ),
];

/// The stable SARIF rule id for a bug kind.
pub fn rule_id(kind: BugKind) -> String {
    format!("canary/{kind}")
}

/// Builds the complete SARIF 2.1.0 document for one run.
///
/// `prog` must be the program the reports' labels refer to (the
/// context-cloned program when context sensitivity rewrote it).
pub fn sarif_document(prog: &Program, reports: &[BugReport], manifest: &RunManifest) -> Value {
    let cg = CallGraph::build(prog);
    let ts = ThreadStructure::compute(prog, &cg);
    let rules: Vec<Value> = RULES
        .iter()
        .map(|&(kind, name, desc)| {
            json!({
                "id": rule_id(kind),
                "name": name,
                "shortDescription": { "text": kind.to_string() },
                "fullDescription": { "text": desc },
                "help": { "text": format!(
                    "Reported when the SMT solver proves the aggregated guard and \
                     program-order constraints (Eq. 5) satisfiable; the codeFlow \
                     replays the witness interleaving. {desc}"
                ) },
                "defaultConfiguration": { "level": "error" },
            })
        })
        .collect();
    let results: Vec<Value> = reports
        .iter()
        .map(|r| result_of(prog, &ts, r, manifest))
        .collect();
    let config: BTreeMap<String, Value> = manifest
        .config
        .iter()
        .map(|(k, v)| (k.clone(), Value::String(v.clone())))
        .collect();
    let timings: BTreeMap<String, Value> = manifest
        .timings_ms
        .iter()
        .map(|(k, v)| (k.clone(), serde_json::value_of(v)))
        .collect();
    json!({
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": { "driver": {
                "name": "canary",
                "informationUri": "https://github.com/canary-rs/canary",
                "version": env!("CARGO_PKG_VERSION"),
                "rules": rules,
            }},
            "invocations": [{
                "executionSuccessful": true,
                "properties": {
                    "build": {
                        "canaryVersion": manifest.canary_version,
                        "rustcVersion": manifest.rustc_version,
                    },
                    "config": Value::Object(config),
                    "corpusHash": manifest.corpus_hash,
                    "strategy": manifest.strategy,
                    "threads": manifest.threads,
                    "timings": Value::Object(timings),
                },
            }],
            "artifacts": [{
                "location": { "uri": manifest.file, "index": 0 },
                "hashes": { "fnv1a64": manifest.corpus_hash },
            }],
            "columnKind": "utf16CodeUnits",
            "results": results,
        }],
    })
}

/// A `physicalLocation` for a statement label. No source positions
/// exist in the bounded IR, so the label doubles as a 1-based line.
fn physical_location(file: &str, l: Label) -> Value {
    json!({
        "artifactLocation": { "uri": file, "index": 0 },
        "region": { "startLine": l.0 + 1 },
    })
}

/// A full `location` with the enclosing function as a logical location.
fn location_of(prog: &Program, file: &str, l: Label, text: &str) -> Value {
    json!({
        "physicalLocation": physical_location(file, l),
        "logicalLocations": [{
            "name": prog.func(prog.func_of(l)).name,
            "kind": "function",
        }],
        "message": { "text": text },
    })
}

fn result_of(
    prog: &Program,
    ts: &ThreadStructure,
    r: &BugReport,
    manifest: &RunManifest,
) -> Value {
    let fp = r.fingerprint(prog).to_string();
    let scope = if r.inter_thread {
        "inter-thread"
    } else {
        "intra-thread"
    };
    let message = format!(
        "{} ({scope}): {} in `{}` reaches {} in `{}`",
        r.kind,
        render_inst(prog, r.source),
        prog.func(prog.func_of(r.source)).name,
        render_inst(prog, r.sink),
        prog.func(prog.func_of(r.sink)).name,
    );
    let mut fingerprints = BTreeMap::new();
    fingerprints.insert(FINGERPRINT_KEY.to_string(), Value::String(fp));
    json!({
        "ruleId": rule_id(r.kind),
        "ruleIndex": r.kind as usize,
        "level": "error",
        "message": { "text": message },
        "locations": [location_of(
            prog,
            &manifest.file,
            r.sink,
            &format!("sink: {}", render_inst(prog, r.sink)),
        )],
        "relatedLocations": [location_of(
            prog,
            &manifest.file,
            r.source,
            &format!("source: {}", render_inst(prog, r.source)),
        )],
        "partialFingerprints": Value::Object(fingerprints),
        "codeFlows": [{ "threadFlows": thread_flows(prog, ts, r, manifest) }],
        "properties": {
            "constraint": r.constraint,
            "interThread": r.inter_thread,
            "path": r.path.clone(),
            "provenance": r.provenance.as_ref().map(|p| p.to_json()).unwrap_or(Value::Null),
            "witnessSchedule": r.schedule.iter().map(|l| l.to_string()).collect::<Vec<_>>(),
        },
    })
}

/// Builds one `threadFlow` per static thread touched by the witness
/// schedule. Fork and join steps are flow-join points: each appears in
/// the executing thread's flow *and* in the forked/joined thread's
/// flow, so a viewer stepping one thread sees where control handed
/// over. `executionOrder` is the 1-based global schedule position, so
/// the full interleaving is reconstructible across flows.
fn thread_flows(
    prog: &Program,
    ts: &ThreadStructure,
    r: &BugReport,
    manifest: &RunManifest,
) -> Vec<Value> {
    let schedule: Vec<Label> = if r.schedule.is_empty() {
        vec![r.source, r.sink]
    } else {
        r.schedule.clone()
    };
    let mut flows: BTreeMap<u32, Vec<Value>> = BTreeMap::new();
    let push = |flows: &mut BTreeMap<u32, Vec<Value>>,
                    thread: u32,
                    order: usize,
                    l: Label,
                    text: String,
                    importance: &str| {
        flows.entry(thread).or_default().push(json!({
            "executionOrder": order + 1,
            "importance": importance,
            "location": location_of(prog, &manifest.file, l, &text),
        }));
    };
    for (i, &l) in schedule.iter().enumerate() {
        let exec = ts
            .threads_of(prog, l)
            .first()
            .copied()
            .unwrap_or(MAIN_THREAD)
            .0;
        let stmt = format!("{l}: {}", render_inst(prog, l));
        match prog.inst(l) {
            Inst::Fork { thread, .. } => {
                push(
                    &mut flows,
                    exec,
                    i,
                    l,
                    format!("{stmt} [forks t{}]", thread.0),
                    "essential",
                );
                push(
                    &mut flows,
                    thread.0,
                    i,
                    l,
                    format!("{stmt} [thread t{} starts here]", thread.0),
                    "essential",
                );
            }
            Inst::Join { thread } => {
                push(
                    &mut flows,
                    exec,
                    i,
                    l,
                    format!("{stmt} [joins t{}]", thread.0),
                    "essential",
                );
                push(
                    &mut flows,
                    thread.0,
                    i,
                    l,
                    format!("{stmt} [joined by t{exec}]"),
                    "essential",
                );
            }
            _ => {
                let importance = if l == r.source || l == r.sink {
                    "essential"
                } else {
                    "important"
                };
                push(&mut flows, exec, i, l, stmt, importance);
            }
        }
    }
    flows
        .into_iter()
        .map(|(t, locations)| json!({ "id": format!("t{t}"), "locations": locations }))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(src: &str) -> (Program, Vec<BugReport>) {
        use canary_ir::MhpAnalysis;
        let prog: Program = canary_ir::parse(src).unwrap();
        prog.validate().unwrap();
        let cg = CallGraph::build(&prog);
        let ts = ThreadStructure::compute(&prog, &cg);
        let mhp = MhpAnalysis::new(&prog, &cg, &ts);
        let mut pool = canary_smt::TermPool::new();
        let mut df = canary_dataflow::run(&prog, &cg, &mut pool);
        canary_interference::run(
            &prog,
            &ts,
            &mhp,
            &mut df,
            &mut pool,
            &canary_interference::InterferenceOptions::default(),
        );
        let opts = canary_detect::DetectOptions::default();
        let ctx = canary_detect::DetectContext::new(&prog, &ts, &mhp, &df, &opts);
        let mut stats = canary_detect::DetectStats::default();
        let reports = canary_detect::check_all_kinds(&ctx, &mut pool, &opts, &mut stats);
        (prog, reports)
    }

    fn manifest() -> RunManifest {
        RunManifest {
            file: "test.cir".into(),
            corpus_hash: "deadbeefdeadbeef".into(),
            strategy: "incremental".into(),
            threads: 1,
            config: vec![("memory_model".into(), "sc".into())],
            canary_version: "0.0.0-test".into(),
            rustc_version: "rustc 0.0.0-test".into(),
            timings_ms: vec![("detect".into(), 1.5)],
        }
    }

    const RACY: &str = "fn main() { p = alloc o; fork t w(p); free p; }
                        fn w(q) { use q; }";

    #[test]
    fn document_shape_and_rules() {
        let (prog, reports) = analyze(RACY);
        assert!(!reports.is_empty());
        let doc = sarif_document(&prog, &reports, &manifest());
        assert_eq!(doc.get("version").unwrap().as_str().unwrap(), "2.1.0");
        let runs = doc.get("runs").unwrap().as_array().unwrap();
        assert_eq!(runs.len(), 1);
        let rules = runs[0]
            .get("tool").unwrap()
            .get("driver").unwrap()
            .get("rules").unwrap()
            .as_array().unwrap();
        assert_eq!(rules.len(), 6);
        assert_eq!(
            rules[0].get("id").unwrap().as_str().unwrap(),
            "canary/use-after-free"
        );
        let results = runs[0].get("results").unwrap().as_array().unwrap();
        assert_eq!(results.len(), reports.len());
        for (res, rep) in results.iter().zip(&reports) {
            assert_eq!(
                res.get("ruleIndex").unwrap().as_u64().unwrap(),
                rep.kind as u64
            );
            let fp = res
                .get("partialFingerprints").unwrap()
                .get(FINGERPRINT_KEY).unwrap()
                .as_str().unwrap();
            assert_eq!(fp, rep.fingerprint(&prog).to_string());
        }
    }

    #[test]
    fn code_flows_have_one_thread_flow_per_thread_with_fork_join_points() {
        let (prog, reports) = analyze(RACY);
        let uaf = reports
            .iter()
            .find(|r| r.kind == BugKind::UseAfterFree)
            .unwrap();
        let doc = sarif_document(&prog, std::slice::from_ref(uaf), &manifest());
        let s = serde_json::to_string(&doc).unwrap();
        let flows = doc.get("runs").unwrap().as_array().unwrap()[0]
            .get("results").unwrap().as_array().unwrap()[0]
            .get("codeFlows").unwrap().as_array().unwrap()[0]
            .get("threadFlows").unwrap().as_array().unwrap();
        // The racy program has a main thread and one forked thread.
        assert_eq!(flows.len(), 2, "{s}");
        let ids: Vec<&str> = flows
            .iter()
            .map(|f| f.get("id").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(ids, vec!["t0", "t1"]);
        // The fork step appears in both flows (flow-join point).
        assert!(s.contains("[forks t1]"));
        assert!(s.contains("[thread t1 starts here]"));
        // Execution order is 1-based and present on every location.
        for f in flows {
            for loc in f.get("locations").unwrap().as_array().unwrap() {
                assert!(loc.get("executionOrder").unwrap().as_u64().unwrap() >= 1);
            }
        }
    }

    #[test]
    fn invocation_carries_manifest() {
        let (prog, reports) = analyze(RACY);
        let doc = sarif_document(&prog, &reports, &manifest());
        let inv = &doc.get("runs").unwrap().as_array().unwrap()[0]
            .get("invocations").unwrap().as_array().unwrap()[0];
        let props = inv.get("properties").unwrap();
        assert_eq!(
            props.get("corpusHash").unwrap().as_str().unwrap(),
            "deadbeefdeadbeef"
        );
        assert_eq!(props.get("strategy").unwrap().as_str().unwrap(), "incremental");
        assert_eq!(props.get("threads").unwrap().as_u64().unwrap(), 1);
        assert!(props.get("timings").unwrap().get("detect").is_some());
        assert!(props.get("config").unwrap().get("memory_model").is_some());
    }

    #[test]
    fn clean_program_yields_empty_results() {
        let (prog, reports) = analyze("fn main() { p = alloc o; use p; free p; }");
        assert!(reports.is_empty());
        let doc = sarif_document(&prog, &reports, &manifest());
        let results = doc.get("runs").unwrap().as_array().unwrap()[0]
            .get("results").unwrap().as_array().unwrap();
        assert!(results.is_empty());
    }
}
