//! # canary-report
//!
//! Report interchange for the Canary pipeline: the layer that turns
//! in-memory [`BugReport`]s into artifacts other tools can consume.
//!
//! * [`sarif`] — SARIF 2.1.0 export with thread-aware `codeFlows`
//!   (one `threadFlow` per static thread, fork/join steps appearing in
//!   both the forking and forked flows as flow-join points), per-rule
//!   metadata for every [`BugKind`](canary_detect::BugKind), stable
//!   `partialFingerprints`, and an invocation block carrying the run
//!   manifest.
//! * [`diff`] — fingerprint-keyed run-to-run comparison classifying
//!   findings as *new*, *persisting* or *fixed*, the engine behind
//!   `--baseline` and `canary diff`.
//!
//! Everything here is deterministic: SARIF objects serialize with
//! sorted keys, result order follows report order, and the only
//! nondeterministic values (phase wall times) are quarantined under
//! `invocations[0].properties.timings` where the determinism harness
//! normalizes them away.
//!
//! [`BugReport`]: canary_detect::BugReport

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod diff;
pub mod sarif;

pub use diff::{diff_sarif, findings_of_sarif, FindingSummary, SarifDiff};
pub use sarif::{sarif_document, RunManifest, SARIF_SCHEMA_URI, SARIF_VERSION};

/// FNV-1a 64-bit content hash, rendered as 16 hex digits — the corpus
/// hash recorded in the SARIF run manifest so two runs can be checked
/// for input identity before diffing.
pub fn content_hash(bytes: &[u8]) -> String {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_hash_is_stable_and_input_sensitive() {
        let a = content_hash(b"fn main() {}");
        assert_eq!(a.len(), 16);
        assert_eq!(a, content_hash(b"fn main() {}"));
        assert_ne!(a, content_hash(b"fn main() { }"));
    }
}
