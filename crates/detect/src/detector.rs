//! The source-sink checkers (§5): use-after-free, double-free,
//! null-dereference and data-leak, all reduced to guarded reachability
//! over the interference-aware VFG followed by SMT validation of
//! `Φ_all = Φ_guards ∧ Φ_po` (Eq. 5).

use std::collections::{BTreeSet, HashMap, HashSet};
use std::time::Duration;

use canary_dataflow::{DataflowResult, LockModel};
use canary_ir::{Inst, Label, MhpAnalysis, Program, ThreadStructure, VarId};
use canary_smt::{
    check_all_grouped, check_orders, EventId, Node, OrderEdge, QueryCache, SmtResult,
    SolverOptions, SolverStats, TermId, TermPool, TheoryResult,
};
use canary_trace::{Tracer, LANE_DETECT, LANE_SMT};
use canary_vfg::{EdgeKind, NodeId, NodeKind};

use crate::audit::{AuditLog, Disposition};
use crate::constraints;
use crate::path::{enumerate_paths_budgeted, PathLimits, SinkReach, VfPath};
use crate::provenance::{
    EscapeFact, Fingerprint, MhpFact, ModelSlice, ProvEdge, ProvNode, Provenance,
};
use crate::report::{BugKind, BugReport};
use crate::sync::SyncModel;

/// The memory model assumed when generating program-order constraints
/// (§9 extension: "extension to relaxed memory models such as
/// TSO/PSO"). Weaker models *drop* ordering constraints, so they can
/// only add reports — relaxation is conservative for bug finding.
///
/// The location check is syntactic (address variables), a documented
/// approximation: two different pointer variables to the same object
/// are treated as different locations, erring toward reporting.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default)]
pub enum MemoryModel {
    /// Sequential consistency (§3.1, the paper's base model).
    #[default]
    Sc,
    /// Total store order: a store may be reordered after a subsequent
    /// load to a different location (store buffering).
    Tso,
    /// Partial store order: TSO plus store→store reordering to
    /// different locations.
    Pso,
}

/// Options controlling detection.
#[derive(Clone, Debug)]
pub struct DetectOptions {
    /// SMT strategy (§5.2 knobs: prefilter, parallel queries, cubes).
    pub solver: SolverOptions,
    /// Path enumeration caps.
    pub limits: PathLimits,
    /// Report only witnesses spanning more than one thread (the
    /// *inter-thread* checkers of Tbl. 1).
    pub inter_thread_only: bool,
    /// Plug in the §9 lock/unlock + wait/notify constraints.
    pub sync_constraints: bool,
    /// Memory model for program-order constraint generation (§9).
    pub memory_model: MemoryModel,
    /// Compute minimized refutation cores for dismissed candidates
    /// (diagnostics; costs extra solver calls per refuted candidate).
    pub explain_refutations: bool,
    /// Slow-query watchdog budget in milliseconds: any SMT query whose
    /// wall time meets the budget is logged to stderr with its
    /// [`QueryProfile`] attribution, independent of `CANARY_LOG`.
    /// `None` (the default) disables the watchdog.
    pub slow_query_ms: Option<u64>,
}

impl Default for DetectOptions {
    fn default() -> Self {
        DetectOptions {
            solver: SolverOptions::default(),
            limits: PathLimits::default(),
            inter_thread_only: false,
            sync_constraints: true,
            memory_model: MemoryModel::Sc,
            explain_refutations: false,
            slow_query_ms: None,
        }
    }
}

/// Counters for the evaluation harness. The solver-work fields
/// (`prefiltered` onward) aggregate the per-query [`QueryProfile`]
/// counters of every validated candidate — they are sums of
/// deterministic per-query counts, so they are deterministic too.
#[derive(Clone, Copy, Debug, Default)]
pub struct DetectStats {
    /// Candidate source-sink paths enumerated.
    pub candidate_paths: usize,
    /// SMT queries issued (after prefiltering at construction).
    pub queries: usize,
    /// Reports surviving SMT validation.
    pub confirmed: usize,
    /// Queries answered by the semi-decision prefilter alone.
    pub prefiltered: u64,
    /// CDCL decisions across all validation queries.
    pub decisions: u64,
    /// CDCL conflicts across all validation queries.
    pub conflicts: u64,
    /// Unit propagations across all validation queries.
    pub propagations: u64,
    /// Learned clauses retained across all validation queries.
    pub learned: u64,
    /// Theory (order-cycle) lemmas across all validation queries.
    pub theory_lemmas: u64,
    /// Query families formed by the incremental strategy (0 under
    /// `fresh`).
    pub families: u64,
    /// Queries answered from the hash-consed result memo.
    pub memo_hits: u64,
    /// Queries refuted by UNSAT-core subsumption.
    pub core_subsumed: u64,
    /// Queries solved on a persistent family solver.
    pub incremental: u64,
    /// Learned clauses still alive on family solvers at family end —
    /// reuse the fresh strategy discards between queries.
    pub clauses_retained: u64,
    /// Family members that blew the conflict budget and escalated to
    /// cube-and-conquer (0 unless `--cube-split` is armed).
    pub cube_escalated: u64,
    /// Cache merge barriers executed by the dispatcher (shard epochs;
    /// deterministic for a fixed shard count and family list).
    pub epochs: u64,
}

/// Per-SMT-query attribution record (§5 validation): which candidate
/// the query belonged to, how big its formula was, and what the solver
/// spent on it. Everything except `wall` is deterministic.
#[derive(Clone, Debug)]
pub struct QueryProfile {
    /// The property being checked.
    pub kind: BugKind,
    /// Candidate source statement.
    pub source: Label,
    /// Candidate sink statement.
    pub sink: Label,
    /// VFG nodes on the candidate path.
    pub path_len: u64,
    /// Distinct Boolean (branch) atoms in `Φ_all`.
    pub bool_atoms: u64,
    /// Distinct strict-order atoms in `Φ_all`.
    pub order_atoms: u64,
    /// Whether the query was satisfiable (a confirmed flow).
    pub sat: bool,
    /// Answered by the prefilter alone.
    pub prefiltered: bool,
    /// CDCL decisions.
    pub decisions: u64,
    /// CDCL conflicts.
    pub conflicts: u64,
    /// Unit propagations.
    pub propagations: u64,
    /// Learned clauses retained.
    pub learned: u64,
    /// Theory lemmas fed back.
    pub theory_lemmas: u64,
    /// Answered from the hash-consed result memo.
    pub memo_hit: bool,
    /// Refuted by UNSAT-core subsumption.
    pub core_subsumed: bool,
    /// Solved on a persistent family solver.
    pub incremental: bool,
    /// Blew the per-member conflict budget on the family solver and
    /// was re-solved by the deterministic cube-and-conquer sweep.
    pub cubed: bool,
    /// Query-family key the query was grouped under (the candidate's
    /// source label) — the attribution anchor for escalated queries.
    pub family: u64,
    /// Wall time spent solving (not deterministic).
    pub wall: Duration,
}

/// Everything the detector reads; built once per program by the
/// pipeline in `canary-core`.
#[derive(Debug)]
pub struct DetectContext<'p> {
    /// The program under analysis.
    pub prog: &'p Program,
    /// Thread membership facts.
    pub ts: &'p ThreadStructure,
    /// MHP + program order.
    pub mhp: &'p MhpAnalysis<'p>,
    /// Alg. 1 + Alg. 2 output (interference-aware VFG inside).
    pub df: &'p DataflowResult,
    /// Synchronization model (§9 extension), if enabled.
    pub sync: Option<SyncModel>,
    /// Critical-section model for the lock-discipline checkers.
    pub locks: LockModel,
}

impl<'p> DetectContext<'p> {
    /// Builds a context, scanning synchronization sites when enabled.
    pub fn new(
        prog: &'p Program,
        ts: &'p ThreadStructure,
        mhp: &'p MhpAnalysis<'p>,
        df: &'p DataflowResult,
        opts: &DetectOptions,
    ) -> Self {
        let sync = opts
            .sync_constraints
            .then(|| SyncModel::build(prog, mhp.order_graph(), df));
        let locks = LockModel::build(prog, mhp.order_graph(), df);
        DetectContext {
            prog,
            ts,
            mhp,
            df,
            sync,
            locks,
        }
    }

    fn def_node(&self, v: VarId) -> Option<NodeId> {
        let l = self.df.def_site[v.index()]?;
        self.df.vfg.find(NodeKind::Def { var: v, label: l })
    }

    fn use_node(&self, v: VarId, l: Label) -> Option<NodeId> {
        self.df.vfg.find(NodeKind::Def { var: v, label: l })
    }
}

/// A candidate finding awaiting SMT validation. `family` is the
/// query-family key — the candidate's source label, so all paths out
/// of one source (which share almost all of their guard and order
/// conjuncts) land on one persistent solver. Candidates are emitted in
/// source order, so equal keys are contiguous and families form
/// deterministically.
#[derive(Debug)]
struct Candidate {
    query: TermId,
    report: BugReport,
    path_len: u64,
    family: u64,
    /// The pending [`AuditLog`] record opened when the candidate was
    /// materialized; [`validate`] writes its terminal disposition.
    audit_id: usize,
}

/// A candidate the solver refuted, with a deletion-minimal core of the
/// constraints that killed it — the "why is this not a bug" diagnosis
/// dual to the paper's concise bug reports.
#[derive(Clone, Debug)]
pub struct RefutedCandidate {
    /// The property that was being checked.
    pub kind: BugKind,
    /// Candidate source statement.
    pub source: Label,
    /// Candidate sink statement.
    pub sink: Label,
    /// Rendered minimal-core constraints.
    pub core: Vec<String>,
}

/// Runs one checker over the program.
pub fn check_kind(
    ctx: &DetectContext<'_>,
    pool: &mut TermPool,
    kind: BugKind,
    opts: &DetectOptions,
    stats: &mut DetectStats,
) -> Vec<BugReport> {
    check_kind_explained(ctx, pool, kind, opts, stats).0
}

/// Like [`check_kind`], additionally returning a minimized refutation
/// core for every candidate the solver dismissed.
pub fn check_kind_explained(
    ctx: &DetectContext<'_>,
    pool: &mut TermPool,
    kind: BugKind,
    opts: &DetectOptions,
    stats: &mut DetectStats,
) -> (Vec<BugReport>, Vec<RefutedCandidate>) {
    let (reports, refuted, _profiles) = check_kind_traced(
        ctx,
        pool,
        kind,
        opts,
        stats,
        &Tracer::disabled(),
        &mut QueryCache::new(),
        &mut AuditLog::new(),
    );
    (reports, refuted)
}

/// [`check_kind_explained`] plus observability: a per-kind span on the
/// detection lane, one span and one [`QueryProfile`] per SMT query on
/// the SMT lane, and the solver-work counters folded into `stats`.
///
/// `cache` is the cross-checker [`QueryCache`]: pass the same instance
/// to every checker of one analysis run so UNSAT cores and memoized
/// verdicts learned by one checker refute later checkers' queries.
/// Checkers run sequentially, so the reuse is deterministic.
///
/// `audit` is the run-wide [`AuditLog`]: every candidate this checker
/// materializes (or prefilters away) gets exactly one terminal
/// disposition recorded there. Pass the same instance to every checker
/// so memo/subsumption dispositions see earlier checkers' refutations,
/// mirroring the shared `cache`.
#[allow(clippy::too_many_arguments)]
pub fn check_kind_traced(
    ctx: &DetectContext<'_>,
    pool: &mut TermPool,
    kind: BugKind,
    opts: &DetectOptions,
    stats: &mut DetectStats,
    tracer: &Tracer,
    cache: &mut QueryCache,
    audit: &mut AuditLog,
) -> (Vec<BugReport>, Vec<RefutedCandidate>, Vec<QueryProfile>) {
    let paths_before = stats.candidate_paths;
    let mut span = tracer.span(LANE_DETECT, "detect", kind as u64, || {
        format!("detect.kind:{kind}")
    });
    let candidates = match kind {
        BugKind::UseAfterFree => uaf_candidates(ctx, pool, opts, stats, false, audit),
        BugKind::DoubleFree => uaf_candidates(ctx, pool, opts, stats, true, audit),
        BugKind::NullDeref => flow_candidates(
            ctx,
            pool,
            opts,
            stats,
            kind,
            &null_sources(ctx.prog),
            &deref_sinks(ctx),
            audit,
        ),
        BugKind::DataLeak => flow_candidates(
            ctx,
            pool,
            opts,
            stats,
            kind,
            &taint_sources(ctx.prog),
            &sink_nodes(ctx),
            audit,
        ),
        BugKind::DoubleLock => double_lock_candidates(ctx, pool, opts, stats, audit),
        BugKind::ConflictLock => conflict_lock_candidates(ctx, pool, opts, stats, audit),
    };
    span.record(
        "candidate_paths",
        (stats.candidate_paths - paths_before) as u64,
    );
    span.record("queries", candidates.len() as u64);
    let (reports, refuted, profiles) =
        validate(ctx, pool, candidates, opts, stats, kind, tracer, cache, audit);
    span.record("confirmed", reports.len() as u64);
    span.finish();
    canary_trace::log(canary_trace::LogLevel::Debug, || {
        format!(
            "detect: {kind}: {} quer(ies), {} confirmed",
            profiles.len(),
            reports.len()
        )
    });
    (reports, refuted, profiles)
}

/// Runs every checker.
pub fn check_all_kinds(
    ctx: &DetectContext<'_>,
    pool: &mut TermPool,
    opts: &DetectOptions,
    stats: &mut DetectStats,
) -> Vec<BugReport> {
    let mut cache = QueryCache::new();
    let mut audit = AuditLog::new();
    let mut out = Vec::new();
    for kind in [
        BugKind::UseAfterFree,
        BugKind::DoubleFree,
        BugKind::NullDeref,
        BugKind::DataLeak,
        BugKind::DoubleLock,
        BugKind::ConflictLock,
    ] {
        let (reports, _, _) = check_kind_traced(
            ctx,
            pool,
            kind,
            opts,
            stats,
            &Tracer::disabled(),
            &mut cache,
            &mut audit,
        );
        out.extend(reports);
    }
    out
}

/// Counts the distinct Boolean and order atoms in a term DAG.
fn count_atoms(pool: &TermPool, root: TermId) -> (u64, u64) {
    let mut visited: HashSet<TermId> = HashSet::new();
    let mut stack = vec![root];
    let (mut bools, mut orders) = (0u64, 0u64);
    while let Some(t) = stack.pop() {
        if !visited.insert(t) {
            continue;
        }
        match pool.node(t) {
            Node::BoolAtom(_) => bools += 1,
            Node::Order(_, _) => orders += 1,
            Node::Not(a) => stack.push(*a),
            Node::And(xs) | Node::Or(xs) => stack.extend(xs.iter().copied()),
            Node::True | Node::False => {}
        }
    }
    (bools, orders)
}

/// SMT-validates candidates, in parallel when configured (§5.2).
#[allow(clippy::too_many_arguments)]
fn validate(
    ctx: &DetectContext<'_>,
    pool: &mut TermPool,
    candidates: Vec<Candidate>,
    opts: &DetectOptions,
    stats: &mut DetectStats,
    kind: BugKind,
    tracer: &Tracer,
    cache: &mut QueryCache,
    audit: &mut AuditLog,
) -> (Vec<BugReport>, Vec<RefutedCandidate>, Vec<QueryProfile>) {
    stats.queries += candidates.len();
    let queries: Vec<TermId> = candidates.iter().map(|c| c.query).collect();
    let groups: Vec<u64> = candidates.iter().map(|c| c.family).collect();
    let solver_stats = SolverStats::default();
    let grouped = check_all_grouped(pool, &queries, &groups, &opts.solver, &solver_stats, cache);
    let outcomes = grouped.outcomes;
    stats.families += grouped.families;
    stats.clauses_retained += grouped.clauses_retained;
    stats.epochs += grouped.epochs;
    audit.merge_dispatch_loads(&grouped.worker_loads);
    let mut profiles = Vec::with_capacity(outcomes.len());
    for (qi, (cand, o)) in candidates.iter().zip(&outcomes).enumerate() {
        let (bool_atoms, order_atoms) = count_atoms(pool, cand.query);
        // Cross-link the span with the report the query belongs to:
        // the fingerprint is the stable join key between trace events
        // and emitted findings.
        let fp = cand.report.fingerprint(ctx.prog);
        let p = QueryProfile {
            kind,
            source: cand.report.source,
            sink: cand.report.sink,
            path_len: cand.path_len,
            bool_atoms,
            order_atoms,
            sat: o.result == SmtResult::Sat,
            prefiltered: o.stats.prefiltered,
            decisions: o.stats.decisions,
            conflicts: o.stats.conflicts,
            propagations: o.stats.propagations,
            learned: o.stats.learned,
            theory_lemmas: o.stats.theory_lemmas,
            memo_hit: o.memo_hit,
            core_subsumed: o.core_subsumed,
            incremental: o.incremental,
            cubed: o.cubed,
            family: cand.family,
            wall: o.wall,
        };
        // Aggregate only the per-query counters (not the shared atomics,
        // which diagnostics below would pollute): sums of deterministic
        // per-query counts stay deterministic.
        stats.prefiltered += u64::from(p.prefiltered);
        stats.decisions += p.decisions;
        stats.conflicts += p.conflicts;
        stats.propagations += p.propagations;
        stats.learned += p.learned;
        stats.theory_lemmas += p.theory_lemmas;
        stats.memo_hits += u64::from(p.memo_hit);
        stats.core_subsumed += u64::from(p.core_subsumed);
        stats.incremental += u64::from(p.incremental);
        stats.cube_escalated += u64::from(p.cubed);
        tracer.event(
            LANE_SMT,
            "smt.query",
            qi as u64,
            || {
                format!(
                    "smt.query:{}:{}->{}",
                    p.kind, p.source.0, p.sink.0
                )
            },
            o.started,
            o.wall,
            || {
                let mut args = vec![
                    ("sat", u64::from(p.sat)),
                    ("prefiltered", u64::from(p.prefiltered)),
                    ("path_len", p.path_len),
                    ("bool_atoms", p.bool_atoms),
                    ("order_atoms", p.order_atoms),
                    ("decisions", p.decisions),
                    ("conflicts", p.conflicts),
                    ("propagations", p.propagations),
                    ("learned", p.learned),
                    ("theory_lemmas", p.theory_lemmas),
                    ("memo_hit", u64::from(p.memo_hit)),
                    ("core_subsumed", u64::from(p.core_subsumed)),
                    ("incremental", u64::from(p.incremental)),
                    ("cubed", u64::from(p.cubed)),
                ];
                if p.sat {
                    args.push(("report_fp", fp.0));
                }
                args
            },
        );
        if let Some(budget_ms) = opts.slow_query_ms {
            if p.wall.as_millis() as u64 >= budget_ms {
                // Watchdog output is opt-in via the budget itself, so it
                // bypasses CANARY_LOG: asking for it means wanting it.
                eprintln!(
                    "canary: slow-query: {} {}->{} took {:?} (budget {budget_ms}ms): \
                     family={} path_len={} bool_atoms={} order_atoms={} decisions={} \
                     conflicts={} propagations={} learned={} theory_lemmas={} sat={} \
                     prefiltered={} memo_hit={} core_subsumed={} incremental={} cubed={}",
                    p.kind,
                    p.source.0,
                    p.sink.0,
                    p.wall,
                    p.family,
                    p.path_len,
                    p.bool_atoms,
                    p.order_atoms,
                    p.decisions,
                    p.conflicts,
                    p.propagations,
                    p.learned,
                    p.theory_lemmas,
                    p.sat,
                    p.prefiltered,
                    p.memo_hit,
                    p.core_subsumed,
                    p.incremental,
                    p.cubed,
                );
            }
        }
        profiles.push(p);
    }
    canary_trace::log(canary_trace::LogLevel::Summary, || {
        // Per-worker loads and steal counts are timing-dependent, so
        // they stay out of DetectStats and the deterministic registry
        // families; besides this heartbeat line they surface only as
        // the *volatile* `canary_dispatch_*` family, which the
        // determinism normalizers drop wholesale.
        let loads = grouped
            .worker_loads
            .iter()
            .map(|l| {
                if l.stolen > 0 {
                    format!("{}(+{} stolen)", l.families, l.stolen)
                } else {
                    format!("{}", l.families)
                }
            })
            .collect::<Vec<_>>()
            .join("/");
        let loads = if loads.is_empty() {
            String::new()
        } else {
            format!(", worker families {loads}")
        };
        format!(
            "detect: {kind}: {} quer(ies) across {} famil(ies) solved \
             in {} epoch(s){loads}",
            outcomes.len(),
            grouped.families,
            grouped.epochs,
        )
    });
    // First-confirmed fingerprint per (kind, source, sink): later
    // sat candidates for the same key collapse onto it, and the audit
    // names it as their dedup winner. Candidate order is the
    // deterministic enumeration order, so the winner is too.
    let mut seen: HashMap<(BugKind, Label, Label), Fingerprint> = HashMap::new();
    let mut refuted_seen: HashSet<(BugKind, Label, Label)> = HashSet::new();
    let mut out = Vec::new();
    let mut refuted = Vec::new();
    for (mut cand, o) in candidates.into_iter().zip(outcomes) {
        if o.result != SmtResult::Sat {
            audit.dispose_unsat(cand.audit_id, pool, cand.query, o.stats.prefiltered);
            if let Some(core) = &o.core {
                audit.attach_solver_core(
                    cand.audit_id,
                    core.iter().map(|&c| pool.render(c)).collect(),
                );
            }
            if opts.explain_refutations
                && refuted_seen.insert((cand.report.kind, cand.report.source, cand.report.sink))
            {
                let core: Vec<String> = if cand.query == pool.ff() {
                    vec![
                        "constraints fold to false at construction (complementary \
                         branch guards or order atoms)"
                            .to_string(),
                    ]
                } else {
                    canary_smt::minimal_core(pool, cand.query, &opts.solver, &solver_stats)
                        .unwrap_or_default()
                        .into_iter()
                        .map(|c| pool.render(c))
                        .collect()
                };
                refuted.push(RefutedCandidate {
                    kind: cand.report.kind,
                    source: cand.report.source,
                    sink: cand.report.sink,
                    core,
                });
            }
            continue;
        }
        let key = (cand.report.kind, cand.report.source, cand.report.sink);
        let fp = cand.report.fingerprint(ctx.prog);
        if let Some(&winner) = seen.get(&key) {
            audit.dispose(cand.audit_id, Disposition::Deduped { winner });
            continue;
        }
        seen.insert(key, fp);
        audit.dispose(cand.audit_id, Disposition::Reported { fingerprint: fp });
        // Extract one concrete interleaving for the report (§2): a
        // topological order of the model's order atoms, completed with
        // the fork/join sites the oracle needs to replay it, plus the
        // model's branch directions.
        if let Some(w) = canary_smt::check_witness_model(pool, cand.query, &solver_stats) {
            let guards: Vec<(canary_ir::CondId, bool)> = w
                .bools
                .iter()
                .map(|&(i, v)| (canary_ir::CondId(i), v))
                .collect();
            let order: Vec<(Label, Label)> =
                w.orders.iter().map(|&(a, b)| (Label(a), Label(b))).collect();
            let witness: Vec<Label> = w.events.into_iter().map(Label).collect();
            let schedule = crate::schedule::complete_schedule(
                ctx.prog,
                ctx.mhp.order_graph(),
                opts.memory_model,
                &witness,
                cand.report.source,
                cand.report.sink,
            );
            if let Some(prov) = cand.report.provenance.as_mut() {
                prov.model = Some(ModelSlice {
                    guards: guards.clone(),
                    order,
                    schedule: schedule.clone(),
                });
            }
            cand.report.guards = guards;
            cand.report.schedule = schedule;
        }
        out.push(cand.report);
    }
    stats.confirmed += out.len();
    out.sort_by_key(|r| (r.source, r.sink));
    refuted.sort_by_key(|r| (r.source, r.sink));
    (out, refuted, profiles)
}

/// Dereference sinks: `use v` statements, as their VFG use nodes.
fn deref_sinks(ctx: &DetectContext<'_>) -> Vec<(NodeId, Label)> {
    ctx.prog
        .labels()
        .filter_map(|l| match ctx.prog.inst(l) {
            Inst::Deref { ptr } => ctx.use_node(*ptr, l).map(|n| (n, l)),
            _ => None,
        })
        .collect()
}

/// Leak sinks: `sink v` statements.
fn sink_nodes(ctx: &DetectContext<'_>) -> Vec<(NodeId, Label)> {
    ctx.prog
        .labels()
        .filter_map(|l| match ctx.prog.inst(l) {
            Inst::TaintSink { src } => ctx.use_node(*src, l).map(|n| (n, l)),
            _ => None,
        })
        .collect()
}

fn null_sources(prog: &Program) -> Vec<(VarId, Label)> {
    prog.labels()
        .filter_map(|l| match prog.inst(l) {
            Inst::AssignNull { dst } => Some((*dst, l)),
            _ => None,
        })
        .collect()
}

fn taint_sources(prog: &Program) -> Vec<(VarId, Label)> {
    prog.labels()
        .filter_map(|l| match prog.inst(l) {
            Inst::TaintSource { dst } => Some((*dst, l)),
            _ => None,
        })
        .collect()
}

/// Use-after-free / double-free candidates. The freed *objects* anchor
/// the search (every alias of a freed object is dangerous), following
/// the guarded flows out of the object node.
fn uaf_candidates(
    ctx: &DetectContext<'_>,
    pool: &mut TermPool,
    opts: &DetectOptions,
    stats: &mut DetectStats,
    double_free: bool,
    audit: &mut AuditLog,
) -> Vec<Candidate> {
    let kind = if double_free {
        BugKind::DoubleFree
    } else {
        BugKind::UseAfterFree
    };
    let mut sinks: Vec<(NodeId, Label)> = if double_free {
        ctx.prog
            .labels()
            .filter_map(|l| match ctx.prog.inst(l) {
                Inst::Free { ptr } => ctx.use_node(*ptr, l).map(|n| (n, l)),
                _ => None,
            })
            .collect()
    } else {
        deref_sinks(ctx)
    };
    sinks.sort_unstable();
    let sink_set: HashSet<NodeId> = sinks.iter().map(|&(n, _)| n).collect();
    // One reverse-reachability pass for the whole checker: every
    // source below enumerates against the same sink set.
    let reach = SinkReach::compute(&ctx.df.vfg, &sink_set);
    let mut out = Vec::new();
    for free_label in ctx.prog.free_sites() {
        let Inst::Free { ptr } = ctx.prog.inst(free_label) else {
            continue;
        };
        let Some(pn) = ctx.def_node(*ptr) else { continue };
        let free_guard = ctx.df.path_conds.guard(free_label);
        // Objects the freed pointer may reference.
        for obj in ctx.df.vfg.objects_reaching(pn) {
            let Some(on) = ctx
                .df
                .vfg
                .node_ids()
                .find(|&n| matches!(ctx.df.vfg.kind(n), NodeKind::Object { obj: o, .. } if o == obj))
            else {
                continue;
            };
            let (paths, trunc) =
                enumerate_paths_budgeted(&ctx.df.vfg, on, &sink_set, &reach, opts.limits);
            if let Some(limit) = trunc.limit() {
                // Candidates past the cut never materialize; the
                // budget marker is their collective disposition.
                audit.record_path_budget(
                    kind,
                    free_label,
                    Some(ctx.prog.obj_name(obj).to_string()),
                    limit,
                );
            }
            for p in paths {
                stats.candidate_paths += 1;
                let sink_node = *p.nodes.last().expect("paths are nonempty");
                let Some(&(_, sink_label)) =
                    sinks.iter().find(|&&(n, _)| n == sink_node)
                else {
                    continue;
                };
                if sink_label == free_label {
                    continue;
                }
                if double_free && sink_label < free_label {
                    // Report each unordered pair once.
                    continue;
                }
                let mut extra = vec![free_guard];
                if !double_free {
                    // The use must be *after* the free.
                    extra.push(pool.order_lt(free_label.0, sink_label.0));
                }
                if let Some(c) = finish_candidate(
                    ctx, pool, opts, kind, free_label, sink_label, &p, &extra, audit,
                ) {
                    out.push(c);
                }
            }
        }
    }
    out
}

/// Generic value-flow candidates from variable-def sources to sinks
/// (null-dereference, data-leak).
#[allow(clippy::too_many_arguments)]
fn flow_candidates(
    ctx: &DetectContext<'_>,
    pool: &mut TermPool,
    opts: &DetectOptions,
    stats: &mut DetectStats,
    kind: BugKind,
    sources: &[(VarId, Label)],
    sinks: &[(NodeId, Label)],
    audit: &mut AuditLog,
) -> Vec<Candidate> {
    let sink_set: HashSet<NodeId> = sinks.iter().map(|&(n, _)| n).collect();
    let reach = SinkReach::compute(&ctx.df.vfg, &sink_set);
    let mut out = Vec::new();
    for &(src_var, src_label) in sources {
        let Some(sn) = ctx
            .df
            .vfg
            .find(NodeKind::Def {
                var: src_var,
                label: src_label,
            })
        else {
            continue;
        };
        let src_guard = ctx.df.path_conds.guard(src_label);
        let (paths, trunc) =
            enumerate_paths_budgeted(&ctx.df.vfg, sn, &sink_set, &reach, opts.limits);
        if let Some(limit) = trunc.limit() {
            audit.record_path_budget(kind, src_label, None, limit);
        }
        for p in paths {
            stats.candidate_paths += 1;
            let sink_node = *p.nodes.last().expect("paths are nonempty");
            let Some(&(_, sink_label)) = sinks.iter().find(|&&(n, _)| n == sink_node) else {
                continue;
            };
            let extra = vec![src_guard];
            if let Some(c) = finish_candidate(
                ctx, pool, opts, kind, src_label, sink_label, &p, &extra, audit,
            ) {
                out.push(c);
            }
        }
    }
    out
}

/// Renders a lock/unlock site as `mutex@l<n>` — the same shape as VFG
/// node renders, so fingerprints stay stable under line shifts.
fn lock_render(prog: &Program, l: Label) -> String {
    let v = match prog.inst(l) {
        Inst::Lock { mutex } | Inst::Unlock { mutex } => *mutex,
        _ => unreachable!("lock_render on a non-lock site"),
    };
    format!("{}@{}", prog.var_name(v), l)
}

/// The mutex object a lock site resolves to, for provenance nodes.
fn lock_object(prog: &Program, lm: &LockModel, l: Label) -> Option<String> {
    lm.locks
        .iter()
        .chain(lm.unlocks.iter())
        .find(|s| s.label == l)
        .and_then(|s| s.objs.first())
        .map(|&o| prog.obj_name(o).to_string())
}

/// Double-lock candidates: a thread re-acquires a mutex of the same
/// alias class while the first acquisition's guard is still live — no
/// aliasing unlock intervenes on any path between the two sites.
/// Cross-thread acquisition of a held lock is contention, not
/// double-lock, so pairs that may sit in distinct threads are skipped
/// (mirroring the oracle, which only reports same-thread
/// re-acquisition). Feasibility is `Φ_guards ∧ O_first < O_second ∧
/// Φ_po`; region mutual exclusion is irrelevant since both events are
/// in one thread.
fn double_lock_candidates(
    ctx: &DetectContext<'_>,
    pool: &mut TermPool,
    opts: &DetectOptions,
    stats: &mut DetectStats,
    audit: &mut AuditLog,
) -> Vec<Candidate> {
    if opts.inter_thread_only {
        // Double-lock is an intra-thread discipline bug by definition.
        return Vec::new();
    }
    let og = ctx.mhp.order_graph();
    let lm = &ctx.locks;
    let keep = order_policy(ctx.prog, opts.memory_model);
    let mut out = Vec::new();
    for a in &lm.locks {
        let Some(class) = a.class else { continue };
        for b in &lm.locks {
            if a.label == b.label
                || b.class != Some(class)
                || !og.happens_before(a.label, b.label)
                || ctx
                    .ts
                    .may_be_in_distinct_threads(ctx.prog, a.label, b.label)
            {
                continue;
            }
            // An aliasing unlock between the two acquisitions releases
            // the guard; any such release defuses the pair.
            let released = lm.unlocks.iter().any(|u| {
                u.class == Some(class)
                    && og.happens_before(a.label, u.label)
                    && og.happens_before(u.label, b.label)
            });
            if released {
                continue;
            }
            stats.candidate_paths += 1;
            let reacq = pool.order_lt(a.label.0, b.label.0);
            let extra = [
                ctx.df.path_conds.guard(a.label),
                ctx.df.path_conds.guard(b.label),
                reacq,
            ];
            let labels = [a.label, b.label];
            let query = constraints::assemble_with(pool, og, &[], &labels, &extra, &keep);
            if query == pool.ff() && !opts.explain_refutations {
                // Same terminal record the validate-side disposal
                // writes when diagnostics keep the candidate alive, so
                // the audit export is explain-flag-invariant.
                audit.record_candidate(
                    BugKind::DoubleLock,
                    a.label,
                    b.label,
                    Disposition::Prefiltered { unit_cycle: false },
                );
                continue;
            }
            let object = lock_object(ctx.prog, lm, a.label);
            let nodes = vec![
                ProvNode {
                    id: 0,
                    label: a.label,
                    render: lock_render(ctx.prog, a.label),
                    object: object.clone(),
                },
                ProvNode {
                    id: 1,
                    label: b.label,
                    render: lock_render(ctx.prog, b.label),
                    object,
                },
            ];
            let edges = vec![ProvEdge {
                from: 0,
                to: 1,
                kind: EdgeKind::Direct,
                guard: format!("class {class} still held: {}", pool.render(reacq)),
                escape: None,
            }];
            let mhp = vec![MhpFact {
                store: a.label,
                load: b.label,
                parallel: ctx.mhp.may_happen_in_parallel(a.label, b.label),
                ordered: og.program_order(a.label, b.label),
            }];
            out.push(Candidate {
                query,
                path_len: 2,
                family: u64::from(a.label.0),
                audit_id: audit.begin_candidate(BugKind::DoubleLock, a.label, b.label),
                report: BugReport {
                    kind: BugKind::DoubleLock,
                    source: a.label,
                    sink: b.label,
                    path: vec![
                        lock_render(ctx.prog, a.label),
                        lock_render(ctx.prog, b.label),
                    ],
                    inter_thread: false,
                    constraint: pool.render(query),
                    schedule: Vec::new(),
                    guards: Vec::new(),
                    provenance: Some(Provenance {
                        nodes,
                        edges,
                        mhp,
                        model: None,
                    }),
                },
            });
        }
    }
    out
}

/// Conflicting-lock-order candidates: threads acquire the mutexes of a
/// class cycle in incompatible orders. Each nested acquisition — an
/// inner lock site of class `c'` inside a region guarding class `c` —
/// induces an edge `c → c'` in the lock-order graph; the strict
/// partial-order theory decides cyclicity, and each conflict core it
/// returns is exactly one cycle. Cycle edges are removed and the
/// theory re-run, so disjoint seeded cycles surface deterministically.
///
/// A cycle becomes a candidate only when every pair of outer
/// acquisitions may run in distinct threads in parallel, and no *gate
/// lock* — a common class held around every outer, outside the cycle
/// itself — serializes the acquisition sequences (Lockbud's classic
/// false-positive filter). Feasibility is `Φ_guards ∧ (every outer
/// before every inner) ∧ Φ_po`: the canonical blocked state. Region
/// mutual exclusion is deliberately NOT conjoined — the order theory
/// models complete executions and a deadlock has none, so Φ_ls would
/// wrongly refute genuine deadlocks.
fn conflict_lock_candidates(
    ctx: &DetectContext<'_>,
    pool: &mut TermPool,
    opts: &DetectOptions,
    stats: &mut DetectStats,
    audit: &mut AuditLog,
) -> Vec<Candidate> {
    let og = ctx.mhp.order_graph();
    let lm = &ctx.locks;
    // (outer region, inner lock label, inner class): class(region) is
    // held while the inner class is acquired.
    let mut remaining: Vec<(usize, Label, usize)> = Vec::new();
    for (ri, r) in lm.regions.iter().enumerate() {
        for s in &lm.locks {
            let Some(sc) = s.class else { continue };
            if sc != r.class && s.label != r.lock && lm.in_region(og, r, s.label) {
                remaining.push((ri, s.label, sc));
            }
        }
    }
    let mut cycles: Vec<Vec<(usize, Label, usize)>> = Vec::new();
    loop {
        let edges: Vec<OrderEdge> = remaining
            .iter()
            .enumerate()
            .map(|(i, &(ri, _, sc))| OrderEdge {
                from: lm.regions[ri].class as EventId,
                to: sc as EventId,
                atom: i,
            })
            .collect();
        match check_orders(&edges) {
            TheoryResult::Consistent => break,
            TheoryResult::Conflict(atoms) => {
                cycles.push(atoms.iter().map(|&i| remaining[i]).collect());
                for &i in atoms.iter().rev() {
                    remaining.remove(i);
                }
            }
        }
    }
    let keep = order_policy(ctx.prog, opts.memory_model);
    let mut out = Vec::new();
    'cycles: for cyc in cycles {
        // Every pair of outer acquisitions must be concurrently
        // reachable in distinct threads, else the "cycle" is one
        // thread's own nesting history, not a deadlock.
        for (i, &(ri, _, _)) in cyc.iter().enumerate() {
            for &(rj, _, _) in &cyc[i + 1..] {
                let (a, b) = (lm.regions[ri].lock, lm.regions[rj].lock);
                if !ctx.ts.may_be_in_distinct_threads(ctx.prog, a, b)
                    || !ctx.mhp.may_happen_in_parallel(a, b)
                {
                    continue 'cycles;
                }
            }
        }
        // Gate-lock filter: a common class held around every outer,
        // outside the cycle's own classes, serializes the sequences.
        let cycle_classes: HashSet<usize> =
            cyc.iter().map(|&(ri, _, _)| lm.regions[ri].class).collect();
        let mut gate: Option<HashSet<usize>> = None;
        for &(ri, _, _) in &cyc {
            let held: HashSet<usize> = lm
                .regions_containing(og, lm.regions[ri].lock)
                .into_iter()
                .map(|i| lm.regions[i].class)
                .filter(|c| !cycle_classes.contains(c))
                .collect();
            gate = Some(match gate {
                None => held,
                Some(g) => g.intersection(&held).copied().collect(),
            });
        }
        if gate.is_some_and(|g| !g.is_empty()) {
            continue;
        }
        stats.candidate_paths += 1;
        let outers: Vec<Label> = cyc.iter().map(|&(ri, _, _)| lm.regions[ri].lock).collect();
        let inners: Vec<Label> = cyc.iter().map(|&(_, l, _)| l).collect();
        let mut labels = outers.clone();
        labels.extend(&inners);
        let mut extra: Vec<TermId> = labels
            .iter()
            .map(|&l| ctx.df.path_conds.guard(l))
            .collect();
        for &o in &outers {
            for &i in &inners {
                if o != i {
                    extra.push(pool.order_lt(o.0, i.0));
                }
            }
        }
        let query = constraints::assemble_with(pool, og, &[], &labels, &extra, &keep);
        // The oracle keys a blocked cycle by its extreme blocked
        // acquisition labels; mirror that so replay confirms.
        let source = *inners.iter().min().expect("cycles are nonempty");
        let sink = *inners.iter().max().expect("cycles are nonempty");
        if query == pool.ff() && !opts.explain_refutations {
            audit.record_candidate(
                BugKind::ConflictLock,
                source,
                sink,
                Disposition::Prefiltered { unit_cycle: false },
            );
            continue;
        }
        let n = cyc.len();
        let mut nodes = Vec::with_capacity(2 * n);
        let mut pedges = Vec::with_capacity(2 * n);
        for (k, &(ri, inner, sc)) in cyc.iter().enumerate() {
            let base = 2 * k;
            for (off, l) in [(0usize, outers[k]), (1, inner)] {
                nodes.push(ProvNode {
                    id: base + off,
                    label: l,
                    render: lock_render(ctx.prog, l),
                    object: lock_object(ctx.prog, lm, l),
                });
            }
            pedges.push(ProvEdge {
                from: base,
                to: base + 1,
                kind: EdgeKind::Direct,
                guard: format!(
                    "holds class {} while acquiring class {sc}",
                    lm.regions[ri].class
                ),
                escape: None,
            });
            pedges.push(ProvEdge {
                from: base + 1,
                to: (base + 2) % (2 * n),
                kind: EdgeKind::Interference,
                guard: "blocked: conflicting acquisition order".to_string(),
                escape: None,
            });
        }
        let mut mhp = Vec::new();
        for (i, &a) in outers.iter().enumerate() {
            for &b in &outers[i + 1..] {
                mhp.push(MhpFact {
                    store: a,
                    load: b,
                    parallel: true,
                    ordered: og.program_order(a, b),
                });
            }
        }
        let path = cyc
            .iter()
            .enumerate()
            .flat_map(|(k, &(_, inner, _))| {
                [
                    lock_render(ctx.prog, outers[k]),
                    lock_render(ctx.prog, inner),
                ]
            })
            .collect();
        out.push(Candidate {
            query,
            path_len: labels.len() as u64,
            family: u64::from(source.0),
            audit_id: audit.begin_candidate(BugKind::ConflictLock, source, sink),
            report: BugReport {
                kind: BugKind::ConflictLock,
                source,
                sink,
                path,
                inter_thread: true,
                constraint: pool.render(query),
                schedule: Vec::new(),
                guards: Vec::new(),
                provenance: Some(Provenance {
                    nodes,
                    edges: pedges,
                    mhp,
                    model: None,
                }),
            },
        });
    }
    out
}

/// Assembles `Φ_all` for a path and wraps it in a report candidate;
/// `None` when the constraint folds to false at construction (the
/// prefilter of §5.2).
#[allow(clippy::too_many_arguments)]
fn finish_candidate(
    ctx: &DetectContext<'_>,
    pool: &mut TermPool,
    opts: &DetectOptions,
    kind: BugKind,
    source: Label,
    sink: Label,
    p: &VfPath,
    extra: &[TermId],
    audit: &mut AuditLog,
) -> Option<Candidate> {
    let path_labels: Vec<Label> = p
        .nodes
        .iter()
        .map(|&n| ctx.df.vfg.kind(n).label())
        .collect();
    let inter_thread = p.has_interference
        || ctx
            .ts
            .may_be_in_distinct_threads(ctx.prog, source, sink);
    if opts.inter_thread_only && !inter_thread {
        audit.record_candidate(kind, source, sink, Disposition::ScopeFiltered);
        return None;
    }
    let mut all_labels = path_labels.clone();
    all_labels.push(source);
    all_labels.push(sink);
    // The sink executes only under its own path condition. Usually the
    // last path edge already carries it, but when the sink coincides
    // with a parameter's anchor node (a sink as its function's first
    // statement) that edge does not exist — conjoin it explicitly.
    let mut extra = extra.to_vec();
    extra.push(ctx.df.path_conds.guard(sink));
    let extra = &extra[..];
    let keep = order_policy(ctx.prog, opts.memory_model);
    let mut query = constraints::assemble_with(
        pool,
        ctx.mhp.order_graph(),
        &p.guards,
        &all_labels,
        extra,
        &keep,
    );
    if let Some(sync) = &ctx.sync {
        let mut events: BTreeSet<Label> = all_labels.iter().copied().collect();
        events.extend(constraints::events_of(pool, query));
        let sc = sync.constraints(pool, ctx.prog, ctx.ts, ctx.mhp.order_graph(), &mut events);
        if sc != pool.tt() {
            // Re-ground the enlarged event set.
            let po = constraints::partial_order_constraints_with(
                pool,
                ctx.mhp.order_graph(),
                &events,
                &keep,
            );
            query = pool.and([query, sc, po]);
        }
    }
    if query == pool.ff() && !opts.explain_refutations {
        // Folded away by the construction-time prefilter (§5.2 opt. 1);
        // kept only when the caller asked for refutation diagnostics.
        // The audit record is the same one validate-side disposal
        // writes for a kept-alive ff candidate, keeping the export
        // explain-flag-invariant.
        audit.record_candidate(
            kind,
            source,
            sink,
            Disposition::Prefiltered { unit_cycle: false },
        );
        return None;
    }
    let path_rendered = p
        .nodes
        .iter()
        .map(|&n| ctx.df.vfg.render_node(ctx.prog, n))
        .collect();
    let provenance = build_provenance(ctx, pool, p);
    Some(Candidate {
        query,
        path_len: p.nodes.len() as u64,
        family: u64::from(source.0),
        audit_id: audit.begin_candidate(kind, source, sink),
        report: BugReport {
            kind,
            source,
            sink,
            path: path_rendered,
            inter_thread,
            constraint: pool.render(query),
            schedule: Vec::new(),
            guards: Vec::new(),
            provenance: Some(provenance),
        },
    })
}

/// Builds the evidence DAG for one enumerated path: every traversed
/// VFG edge with its guard conjunct, the escape fact licensing each
/// cross-thread edge (Defn. 1), and the MHP facts consulted for those
/// pairs. The model slice stays empty until SMT validation succeeds.
fn build_provenance(ctx: &DetectContext<'_>, pool: &TermPool, p: &VfPath) -> Provenance {
    let nodes: Vec<ProvNode> = p
        .nodes
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let object = match ctx.df.vfg.kind(n) {
                NodeKind::Object { obj, .. } => Some(ctx.prog.obj_name(obj).to_string()),
                _ => None,
            };
            ProvNode {
                id: i,
                label: ctx.df.vfg.kind(n).label(),
                render: ctx.df.vfg.render_node(ctx.prog, n),
                object,
            }
        })
        .collect();
    let mut edges = Vec::with_capacity(p.kinds.len());
    let mut mhp = Vec::new();
    for i in 0..p.kinds.len() {
        let (from, to) = (p.nodes[i], p.nodes[i + 1]);
        let kind = p.kinds[i];
        let escape = ctx.df.vfg.license_of(from, to, kind).map(|o| EscapeFact {
            obj: ctx.prog.obj_name(o).to_string(),
            alloc_site: ctx.prog.objs[o.index()].alloc_site,
        });
        if escape.is_some() {
            // Licensed edges are exactly the store/load pairs whose
            // MHP facts Alg. 2 consulted before committing the edge.
            let store = ctx.df.vfg.kind(from).label();
            let load = ctx.df.vfg.kind(to).label();
            mhp.push(MhpFact {
                store,
                load,
                parallel: ctx.mhp.may_happen_in_parallel(store, load),
                ordered: ctx.mhp.order_graph().program_order(store, load),
            });
        }
        edges.push(ProvEdge {
            from: i,
            to: i + 1,
            kind,
            guard: pool.render(p.guards[i]),
            escape,
        });
    }
    Provenance {
        nodes,
        edges,
        mhp,
        model: None,
    }
}

/// The program-order retention policy for a memory model: which
/// `a <P b` pairs the model still enforces. Only same-function pairs
/// are ever relaxed — cross-function order comes from calls and
/// fork/join synchronization, which every model preserves.
pub(crate) fn order_policy(
    prog: &Program,
    model: MemoryModel,
) -> impl Fn(Label, Label) -> bool + '_ {
    move |a: Label, b: Label| -> bool {
        if model == MemoryModel::Sc {
            return true;
        }
        if prog.func_of(a) != prog.func_of(b) {
            return true;
        }
        let (ia, ib) = (prog.inst(a), prog.inst(b));
        let (addr_a, addr_b) = match (ia, ib) {
            (Inst::Store { addr: x, .. }, Inst::Load { addr: y, .. }) => (*x, *y),
            (Inst::Store { addr: x, .. }, Inst::Store { addr: y, .. })
                if model == MemoryModel::Pso =>
            {
                (*x, *y)
            }
            _ => return true,
        };
        // Same (syntactic) location keeps its order under TSO and PSO.
        addr_a == addr_b
    }
}
