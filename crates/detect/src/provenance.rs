//! Report provenance: the evidence DAG behind one finding.
//!
//! A Canary report is a claim — "this source reaches this sink under a
//! satisfiable `Φ_all`" — and this module records the *evidence* for
//! the claim: the concrete value-flow edges walked (with the
//! `Φ_alias`/`Φ_ls` guard conjunct each contributed), the escape facts
//! (`EspObj`/`Pted` entries, Defn. 1) that licensed each interference
//! edge, the MHP facts consulted for each cross-thread pair, and the
//! slice of the satisfying SMT model (branch valuation + committed
//! order atoms + completed schedule). The DAG exports to JSON (for the
//! `--json`/SARIF pipelines) and to Graphviz DOT (for human triage).

use std::fmt;

use canary_ir::{CondId, Label};
use canary_vfg::EdgeKind;
use serde_json::{json, Value};

/// One node of the provenance DAG: a VFG node on the witness path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProvNode {
    /// Dense index into [`Provenance::nodes`]; edge endpoints refer to
    /// these indices.
    pub id: usize,
    /// The statement the node is anchored at.
    pub label: Label,
    /// The `v@ℓ` / `o@ℓ` rendering of the VFG node.
    pub render: String,
    /// The abstract object's name when the node is an object node
    /// (the anchor of a UAF/double-free search), else `None`.
    pub object: Option<String>,
}

/// One edge of the provenance DAG: a traversed VFG edge plus the facts
/// that justified it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProvEdge {
    /// Source node index.
    pub from: usize,
    /// Target node index.
    pub to: usize,
    /// The VFG edge kind (direct / data-dependence / interference).
    pub kind: EdgeKind,
    /// The rendered guard conjunct the edge contributed to `Φ_all`
    /// (for interference edges this is the `Φ_alias ∧ Φ_ls` conjunct
    /// of Eq. 4).
    pub guard: String,
    /// The escape fact that licensed the edge: the escaped object
    /// whose `Pted` entry produced the store/load pair. `None` for
    /// edges of the sequential VFG (Alg. 1), which need no license.
    pub escape: Option<EscapeFact>,
}

/// An `EspObj`/`Pted` entry (Defn. 1): the escaped object that let an
/// interference edge cross threads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EscapeFact {
    /// Source-level name of the object.
    pub obj: String,
    /// The `alloc` statement creating it, when known.
    pub alloc_site: Option<Label>,
}

/// One MHP consultation: the store/load pair of a licensed edge and
/// what the thread-structure analysis said about it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MhpFact {
    /// The interfering store.
    pub store: Label,
    /// The interfered load.
    pub load: Label,
    /// Whether the pair may happen in parallel (distinct, unordered
    /// threads).
    pub parallel: bool,
    /// The order graph's program-order verdict: `Some(true)` when the
    /// store must precede the load, `Some(false)` for the converse,
    /// `None` when unordered.
    pub ordered: Option<bool>,
}

/// The slice of the satisfying SMT model that witnesses the finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelSlice {
    /// Branch-atom valuation, sorted by condition.
    pub guards: Vec<(CondId, bool)>,
    /// The oriented order atoms `(a, b)` (meaning `O_a < O_b`) the
    /// model committed to, sorted.
    pub order: Vec<(Label, Label)>,
    /// The completed replayable schedule prefix.
    pub schedule: Vec<Label>,
}

/// The full evidence DAG for one [`BugReport`](crate::BugReport).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Provenance {
    /// Path nodes, source first, sink last.
    pub nodes: Vec<ProvNode>,
    /// Path edges, in traversal order.
    pub edges: Vec<ProvEdge>,
    /// MHP facts consulted for the licensed (cross-thread) edges.
    pub mhp: Vec<MhpFact>,
    /// The satisfying model slice; `None` until SMT validation
    /// confirms the candidate.
    pub model: Option<ModelSlice>,
}

/// The stable display name of a VFG edge kind (used in JSON, DOT and
/// SARIF output — changing these strings changes the schema).
pub fn edge_kind_name(kind: EdgeKind) -> &'static str {
    match kind {
        EdgeKind::Direct => "direct",
        EdgeKind::DataDep => "data-dep",
        EdgeKind::Interference => "interference",
    }
}

impl Provenance {
    /// Serializes the DAG to the JSON shape documented in
    /// `docs/report_schema.md`.
    pub fn to_json(&self) -> Value {
        let nodes: Vec<Value> = self
            .nodes
            .iter()
            .map(|n| {
                json!({
                    "id": n.id,
                    "label": n.label.to_string(),
                    "render": n.render,
                    "object": n.object.clone().map(Value::String).unwrap_or(Value::Null),
                })
            })
            .collect();
        let edges: Vec<Value> = self
            .edges
            .iter()
            .map(|e| {
                json!({
                    "from": e.from,
                    "to": e.to,
                    "kind": edge_kind_name(e.kind),
                    "guard": e.guard,
                    "escape": e.escape.as_ref().map(|esc| json!({
                        "obj": esc.obj,
                        "alloc_site": esc.alloc_site
                            .map(|l| Value::String(l.to_string()))
                            .unwrap_or(Value::Null),
                    })).unwrap_or(Value::Null),
                })
            })
            .collect();
        let mhp: Vec<Value> = self
            .mhp
            .iter()
            .map(|m| {
                json!({
                    "store": m.store.to_string(),
                    "load": m.load.to_string(),
                    "parallel": m.parallel,
                    "ordered": m.ordered.map(Value::Bool).unwrap_or(Value::Null),
                })
            })
            .collect();
        let model = self
            .model
            .as_ref()
            .map(|m| {
                let guards: Vec<Value> = m
                    .guards
                    .iter()
                    .map(|&(c, v)| json!({"cond": c.to_string(), "value": v}))
                    .collect();
                let order: Vec<Value> = m
                    .order
                    .iter()
                    .map(|&(a, b)| json!([a.to_string(), b.to_string()]))
                    .collect();
                let schedule: Vec<Value> =
                    m.schedule.iter().map(|l| json!(l.to_string())).collect();
                json!({"guards": guards, "order": order, "schedule": schedule})
            })
            .unwrap_or(Value::Null);
        json!({
            "nodes": nodes,
            "edges": edges,
            "mhp": mhp,
            "model": model,
        })
    }

    /// Renders the DAG as a Graphviz digraph. Interference edges are
    /// dashed and annotated with their escape fact; the model slice
    /// (when present) becomes a caption node.
    pub fn to_dot(&self, title: &str) -> String {
        let mut out = String::new();
        out.push_str("digraph provenance {\n");
        out.push_str("  rankdir=LR;\n");
        out.push_str(&format!(
            "  label={};\n  node [shape=box, fontname=\"monospace\"];\n",
            dot_quote(title)
        ));
        for n in &self.nodes {
            let mut label = n.render.clone();
            if let Some(obj) = &n.object {
                label.push_str(&format!("\\n(object {obj})"));
            }
            out.push_str(&format!("  n{} [label={}];\n", n.id, dot_quote_pre(&label)));
        }
        for e in &self.edges {
            let mut label = edge_kind_name(e.kind).to_string();
            if e.guard != "true" {
                label.push_str(&format!("\\nguard: {}", e.guard));
            }
            if let Some(esc) = &e.escape {
                label.push_str(&format!("\\nvia escaped {}", esc.obj));
                if let Some(site) = esc.alloc_site {
                    label.push_str(&format!(" (alloc {site})"));
                }
            }
            let style = match e.kind {
                EdgeKind::Interference => ", style=dashed, color=red",
                EdgeKind::DataDep => ", style=dashed",
                EdgeKind::Direct => "",
            };
            out.push_str(&format!(
                "  n{} -> n{} [label={}{}];\n",
                e.from,
                e.to,
                dot_quote_pre(&label),
                style
            ));
        }
        if let Some(m) = &self.model {
            let sched: Vec<String> = m.schedule.iter().map(|l| l.to_string()).collect();
            let guards: Vec<String> = m
                .guards
                .iter()
                .map(|&(c, v)| format!("{c}={v}"))
                .collect();
            let label = format!(
                "model\\nschedule: {}\\nguards: {}",
                sched.join(" "),
                if guards.is_empty() {
                    "(none)".to_string()
                } else {
                    guards.join(" ")
                }
            );
            out.push_str(&format!(
                "  model [shape=note, label={}];\n",
                dot_quote_pre(&label)
            ));
        }
        out.push_str("}\n");
        out
    }
}

/// Quotes a string for DOT, escaping `"` and `\`.
fn dot_quote(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

/// Like [`dot_quote`] but preserves pre-inserted `\n` line breaks.
fn dot_quote_pre(s: &str) -> String {
    // The input already contains literal `\n` sequences meant for DOT;
    // only escape quotes.
    format!("\"{}\"", s.replace('"', "\\\""))
}

/// A stable, content-addressed report identity (FNV-1a 64-bit over the
/// *semantic* shape of the finding, not its positions): bug kind,
/// source/sink statement text and enclosing function names, the
/// thread-scope flag, and the path shape with statement labels
/// stripped. Robust to label/line renumbering caused by unrelated
/// edits, which is what makes baseline diffing across commits work.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Fingerprint(pub u64);

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl Fingerprint {
    /// Parses the 16-hex-digit rendering produced by `Display`.
    pub fn parse(s: &str) -> Option<Fingerprint> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(Fingerprint)
    }
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// Incremental FNV-1a hasher over length-prefixed byte fields (the
/// length prefix keeps `["ab","c"]` and `["a","bc"]` distinct).
#[derive(Clone, Copy, Debug)]
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    pub(crate) fn field(&mut self, s: &str) {
        self.bytes(&(s.len() as u64).to_le_bytes());
        self.bytes(s.as_bytes());
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}

/// Strips the `@ℓ` position suffix from a rendered VFG node name
/// (`"x@l3"` → `"x"`), leaving non-positional renders untouched.
pub(crate) fn strip_position(render: &str) -> &str {
    match render.rfind('@') {
        Some(i) => {
            let suffix = &render[i + 1..];
            let is_label = suffix.len() > 1
                && suffix.starts_with('l')
                && suffix[1..].bytes().all(|b| b.is_ascii_digit());
            if is_label {
                &render[..i]
            } else {
                render
            }
        }
        None => render,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Provenance {
        Provenance {
            nodes: vec![
                ProvNode {
                    id: 0,
                    label: Label::new(1),
                    render: "o1@l0".into(),
                    object: Some("o1".into()),
                },
                ProvNode {
                    id: 1,
                    label: Label::new(4),
                    render: "c@l4".into(),
                    object: None,
                },
            ],
            edges: vec![ProvEdge {
                from: 0,
                to: 1,
                kind: EdgeKind::Interference,
                guard: "(and c0 !c1)".into(),
                escape: Some(EscapeFact {
                    obj: "o1".into(),
                    alloc_site: Some(Label::new(0)),
                }),
            }],
            mhp: vec![MhpFact {
                store: Label::new(2),
                load: Label::new(4),
                parallel: true,
                ordered: None,
            }],
            model: Some(ModelSlice {
                guards: vec![(CondId::new(0), true)],
                order: vec![(Label::new(2), Label::new(4))],
                schedule: vec![Label::new(0), Label::new(2), Label::new(4)],
            }),
        }
    }

    #[test]
    fn json_round_trips_structure() {
        let v = sample().to_json();
        let s = serde_json::to_string(&v).unwrap();
        assert!(s.contains("\"kind\":\"interference\""));
        assert!(s.contains("\"obj\":\"o1\""));
        assert!(s.contains("\"parallel\":true"));
        assert!(s.contains("\"schedule\":[\"l0\",\"l2\",\"l4\"]"));
    }

    #[test]
    fn dot_has_nodes_edges_and_model() {
        let dot = sample().to_dot("uaf l1 -> l4");
        assert!(dot.starts_with("digraph provenance {"));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("interference"));
        assert!(dot.contains("via escaped o1"));
        assert!(dot.contains("style=dashed, color=red"));
        assert!(dot.contains("shape=note"));
    }

    #[test]
    fn strip_position_only_strips_label_suffixes() {
        assert_eq!(strip_position("x@l3"), "x");
        assert_eq!(strip_position("o12@l345"), "o12");
        assert_eq!(strip_position("weird@name"), "weird@name");
        assert_eq!(strip_position("noat"), "noat");
        assert_eq!(strip_position("trailing@l"), "trailing@l");
    }

    #[test]
    fn fingerprint_display_parses_back() {
        let fp = Fingerprint(0x0123_4567_89ab_cdef);
        assert_eq!(fp.to_string(), "0123456789abcdef");
        assert_eq!(Fingerprint::parse(&fp.to_string()), Some(fp));
        assert_eq!(Fingerprint::parse("xyz"), None);
        assert_eq!(Fingerprint::parse("123"), None);
    }

    #[test]
    fn fnv_length_prefix_separates_field_splits() {
        let mut a = Fnv::new();
        a.field("ab");
        a.field("c");
        let mut b = Fnv::new();
        b.field("a");
        b.field("bc");
        assert_ne!(a.finish(), b.finish());
    }
}
