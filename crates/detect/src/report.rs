//! Bug reports.
//!
//! A Canary report is deliberately small (§1: "concise bug reports with
//! a limited number of relevant statements and conditions"): the
//! source, the sink, the value-flow path between them, and the
//! constraint whose satisfiability witnessed the interleaving.

use std::collections::HashMap;
use std::fmt;

use canary_ir::{CondId, Label, Program};

use crate::provenance::{strip_position, Fingerprint, Fnv, Provenance};

/// The property class of a finding.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum BugKind {
    /// A freed value is dereferenced later (possibly in another thread).
    UseAfterFree,
    /// The same value is freed twice.
    DoubleFree,
    /// A null value is dereferenced.
    NullDeref,
    /// Tainted data reaches a public sink.
    DataLeak,
    /// A non-reentrant lock is re-acquired while its guard is live.
    DoubleLock,
    /// Two threads acquire the same locks in conflicting orders — a
    /// deadlock-capable acquisition-order cycle.
    ConflictLock,
}

impl fmt::Display for BugKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BugKind::UseAfterFree => "use-after-free",
            BugKind::DoubleFree => "double-free",
            BugKind::NullDeref => "null-dereference",
            BugKind::DataLeak => "data-leak",
            BugKind::DoubleLock => "double-lock",
            BugKind::ConflictLock => "conflict-lock",
        };
        f.write_str(s)
    }
}

/// One confirmed (SMT-satisfiable) source-sink finding.
#[derive(Clone, Debug)]
pub struct BugReport {
    /// The property violated.
    pub kind: BugKind,
    /// The source statement (free / null assignment / taint source).
    pub source: Label,
    /// The sink statement (dereference / second free / leak sink).
    pub sink: Label,
    /// The value-flow path, rendered as `v@ℓ` node names.
    pub path: Vec<String>,
    /// Whether the witness spans more than one thread.
    pub inter_thread: bool,
    /// Human-readable rendering of the aggregated constraint.
    pub constraint: String,
    /// A concrete witness interleaving: a complete replayable prefix of
    /// one sequentially consistent execution satisfying `Φ_all` — the
    /// constrained events of the SMT model, closed under the fork/join
    /// sites that must run for them to execute, in one total order
    /// (§2's debugging aid, executable by `canary-oracle`).
    pub schedule: Vec<Label>,
    /// The branch-atom valuation of the witnessing SMT model, as sorted
    /// `(cond, value)` pairs: the branch directions a concrete replay
    /// of [`BugReport::schedule`] must take. Atoms absent here were
    /// unconstrained in the model.
    pub guards: Vec<(CondId, bool)>,
    /// The evidence DAG behind the finding: traversed VFG edges with
    /// their guard conjuncts, escape facts licensing each interference
    /// edge, MHP facts consulted, and the satisfying model slice.
    pub provenance: Option<Provenance>,
}

impl BugReport {
    /// Computes the stable content-addressed identity of the finding
    /// (see [`Fingerprint`]): FNV-1a over the bug kind, source and
    /// sink statement text plus enclosing function names, the
    /// thread-scope flag, and the position-stripped path shape.
    /// Statement *labels* never enter the hash, so renumbering caused
    /// by edits elsewhere in the program leaves fingerprints stable.
    pub fn fingerprint(&self, prog: &Program) -> Fingerprint {
        let mut h = Fnv::new();
        h.field("canary/v1");
        h.field(&self.kind.to_string());
        h.field(&canary_ir::render_inst(prog, self.source));
        h.field(&prog.func(prog.func_of(self.source)).name);
        h.field(&canary_ir::render_inst(prog, self.sink));
        h.field(&prog.func(prog.func_of(self.sink)).name);
        h.field(if self.inter_thread { "inter" } else { "intra" });
        for step in &self.path {
            h.field(strip_position(step));
        }
        Fingerprint(h.finish())
    }

    /// Renders the report against the program for display.
    pub fn render(&self, prog: &Program) -> String {
        let src_fn = prog.func(prog.func_of(self.source)).name.clone();
        let sink_fn = prog.func(prog.func_of(self.sink)).name.clone();
        let scope = if self.inter_thread {
            "inter-thread"
        } else {
            "intra-thread"
        };
        let schedule = if self.schedule.is_empty() {
            String::new()
        } else {
            let steps: Vec<String> = self
                .schedule
                .iter()
                .map(|&l| format!("{l}:{}", canary_ir::render_inst(prog, l)))
                .collect();
            format!("\n  witness schedule: {}", steps.join("  |  "))
        };
        format!(
            "[{}] {} {}: {} in `{}` reaches {} in `{}`\n  path: {}\n  constraint: {}{}",
            scope,
            self.kind,
            if self.inter_thread { "(concurrent)" } else { "" },
            canary_ir::render_inst(prog, self.source),
            src_fn,
            canary_ir::render_inst(prog, self.sink),
            sink_fn,
            self.path.join(" -> "),
            self.constraint,
            schedule,
        )
    }
}

/// Collapses fingerprint-equal reports (the same finding surfacing
/// through multiple checkers or paths) down to one representative per
/// fingerprint, keeping the *shortest* witness — fewest path steps,
/// then fewest schedule steps, then smallest `(source, sink)` as the
/// deterministic tie-break. First-occurrence order of fingerprints is
/// preserved, so the output order is stable for any input order that
/// is itself stable.
pub fn dedup_reports(prog: &Program, reports: Vec<BugReport>) -> Vec<BugReport> {
    let mut order: Vec<u64> = Vec::new();
    let mut best: HashMap<u64, BugReport> = HashMap::new();
    for r in reports {
        let fp = r.fingerprint(prog).0;
        match best.entry(fp) {
            std::collections::hash_map::Entry::Vacant(e) => {
                order.push(fp);
                e.insert(r);
            }
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let cur = e.get();
                let new_key = (r.path.len(), r.schedule.len(), r.source, r.sink);
                let cur_key = (cur.path.len(), cur.schedule.len(), cur.source, cur.sink);
                if new_key < cur_key {
                    e.insert(r);
                }
            }
        }
    }
    order
        .into_iter()
        .map(|fp| best.remove(&fp).expect("every ordered fingerprint was inserted"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_display() {
        assert_eq!(BugKind::UseAfterFree.to_string(), "use-after-free");
        assert_eq!(BugKind::DoubleFree.to_string(), "double-free");
        assert_eq!(BugKind::NullDeref.to_string(), "null-dereference");
        assert_eq!(BugKind::DataLeak.to_string(), "data-leak");
        assert_eq!(BugKind::DoubleLock.to_string(), "double-lock");
        assert_eq!(BugKind::ConflictLock.to_string(), "conflict-lock");
    }

    #[test]
    fn render_contains_path_and_kind() {
        let prog = canary_ir::parse("fn main() { p = alloc o; free p; use p; }").unwrap();
        let report = BugReport {
            kind: BugKind::UseAfterFree,
            source: prog.free_sites()[0],
            sink: prog.deref_sites()[0],
            path: vec!["p@l0".into(), "p@l1".into()],
            inter_thread: false,
            constraint: "true".into(),
            schedule: vec![prog.free_sites()[0], prog.deref_sites()[0]],
            guards: Vec::new(),
            provenance: None,
        };
        let text = report.render(&prog);
        assert!(text.contains("use-after-free"));
        assert!(text.contains("p@l0 -> p@l1"));
        assert!(text.contains("free p"));
    }

    fn sample_report(prog: &Program, path: Vec<String>, schedule_len: usize) -> BugReport {
        BugReport {
            kind: BugKind::UseAfterFree,
            source: prog.free_sites()[0],
            sink: prog.deref_sites()[0],
            path,
            inter_thread: false,
            constraint: "true".into(),
            schedule: vec![prog.free_sites()[0]; schedule_len],
            guards: Vec::new(),
            provenance: None,
        }
    }

    #[test]
    fn fingerprint_ignores_label_positions() {
        let prog = canary_ir::parse("fn main() { p = alloc o; free p; use p; }").unwrap();
        let a = sample_report(&prog, vec!["p@l0".into(), "p@l1".into()], 0);
        let b = sample_report(&prog, vec!["p@l7".into(), "p@l9".into()], 0);
        assert_eq!(a.fingerprint(&prog), b.fingerprint(&prog));
        let c = sample_report(&prog, vec!["q@l0".into(), "p@l1".into()], 0);
        assert_ne!(a.fingerprint(&prog), c.fingerprint(&prog));
    }

    #[test]
    fn dedup_keeps_shortest_witness_in_first_occurrence_order() {
        let prog = canary_ir::parse("fn main() { p = alloc o; free p; use p; }").unwrap();
        let long = sample_report(
            &prog,
            vec!["p@l0".into(), "p@l2".into(), "p@l1".into()],
            3,
        );
        let short = sample_report(&prog, vec!["p@l0".into(), "p@l1".into()], 2);
        // Same fingerprint class only if the shape matches; the 3-step
        // and 2-step paths differ in shape, so craft two same-shape
        // reports with different schedules instead.
        let slow = sample_report(&prog, vec!["p@l0".into(), "p@l1".into()], 5);
        let out = dedup_reports(&prog, vec![slow.clone(), short.clone(), long.clone()]);
        // `slow` and `short` share a fingerprint: the shorter schedule
        // wins, but the entry keeps `slow`'s first-occurrence slot.
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].schedule.len(), 2);
        assert_eq!(out[1].path.len(), 3);
    }
}
