//! Bug reports.
//!
//! A Canary report is deliberately small (§1: "concise bug reports with
//! a limited number of relevant statements and conditions"): the
//! source, the sink, the value-flow path between them, and the
//! constraint whose satisfiability witnessed the interleaving.

use std::fmt;

use canary_ir::{CondId, Label, Program};

/// The property class of a finding.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum BugKind {
    /// A freed value is dereferenced later (possibly in another thread).
    UseAfterFree,
    /// The same value is freed twice.
    DoubleFree,
    /// A null value is dereferenced.
    NullDeref,
    /// Tainted data reaches a public sink.
    DataLeak,
}

impl fmt::Display for BugKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BugKind::UseAfterFree => "use-after-free",
            BugKind::DoubleFree => "double-free",
            BugKind::NullDeref => "null-dereference",
            BugKind::DataLeak => "data-leak",
        };
        f.write_str(s)
    }
}

/// One confirmed (SMT-satisfiable) source-sink finding.
#[derive(Clone, Debug)]
pub struct BugReport {
    /// The property violated.
    pub kind: BugKind,
    /// The source statement (free / null assignment / taint source).
    pub source: Label,
    /// The sink statement (dereference / second free / leak sink).
    pub sink: Label,
    /// The value-flow path, rendered as `v@ℓ` node names.
    pub path: Vec<String>,
    /// Whether the witness spans more than one thread.
    pub inter_thread: bool,
    /// Human-readable rendering of the aggregated constraint.
    pub constraint: String,
    /// A concrete witness interleaving: a complete replayable prefix of
    /// one sequentially consistent execution satisfying `Φ_all` — the
    /// constrained events of the SMT model, closed under the fork/join
    /// sites that must run for them to execute, in one total order
    /// (§2's debugging aid, executable by `canary-oracle`).
    pub schedule: Vec<Label>,
    /// The branch-atom valuation of the witnessing SMT model, as sorted
    /// `(cond, value)` pairs: the branch directions a concrete replay
    /// of [`BugReport::schedule`] must take. Atoms absent here were
    /// unconstrained in the model.
    pub guards: Vec<(CondId, bool)>,
}

impl BugReport {
    /// Renders the report against the program for display.
    pub fn render(&self, prog: &Program) -> String {
        let src_fn = prog.func(prog.func_of(self.source)).name.clone();
        let sink_fn = prog.func(prog.func_of(self.sink)).name.clone();
        let scope = if self.inter_thread {
            "inter-thread"
        } else {
            "intra-thread"
        };
        let schedule = if self.schedule.is_empty() {
            String::new()
        } else {
            let steps: Vec<String> = self
                .schedule
                .iter()
                .map(|&l| format!("{l}:{}", canary_ir::render_inst(prog, l)))
                .collect();
            format!("\n  witness schedule: {}", steps.join("  |  "))
        };
        format!(
            "[{}] {} {}: {} in `{}` reaches {} in `{}`\n  path: {}\n  constraint: {}{}",
            scope,
            self.kind,
            if self.inter_thread { "(concurrent)" } else { "" },
            canary_ir::render_inst(prog, self.source),
            src_fn,
            canary_ir::render_inst(prog, self.sink),
            sink_fn,
            self.path.join(" -> "),
            self.constraint,
            schedule,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_display() {
        assert_eq!(BugKind::UseAfterFree.to_string(), "use-after-free");
        assert_eq!(BugKind::DoubleFree.to_string(), "double-free");
        assert_eq!(BugKind::NullDeref.to_string(), "null-dereference");
        assert_eq!(BugKind::DataLeak.to_string(), "data-leak");
    }

    #[test]
    fn render_contains_path_and_kind() {
        let prog = canary_ir::parse("fn main() { p = alloc o; free p; use p; }").unwrap();
        let report = BugReport {
            kind: BugKind::UseAfterFree,
            source: prog.free_sites()[0],
            sink: prog.deref_sites()[0],
            path: vec!["p@l0".into(), "p@l1".into()],
            inter_thread: false,
            constraint: "true".into(),
            schedule: vec![prog.free_sites()[0], prog.deref_sites()[0]],
            guards: Vec::new(),
        };
        let text = report.render(&prog);
        assert!(text.contains("use-after-free"));
        assert!(text.contains("p@l0 -> p@l1"));
        assert!(text.contains("free p"));
    }
}
