//! Bounded source→sink path enumeration over the guarded VFG (Eq. 3).
//!
//! A value-flow path is a simple node sequence following direct, data-
//! dependence and interference edges. Enumeration is a depth-first walk
//! with per-query caps on path length and count — the search is
//! *on-demand*: it only ever touches the part of the graph reachable
//! from the sources of the property under check, which is the heart of
//! Canary's state-space reduction.

use std::collections::HashSet;

use canary_smt::TermId;
use canary_vfg::{EdgeKind, NodeId, Vfg};

/// One enumerated path: the node sequence and its edge facts.
#[derive(Clone, Debug)]
pub struct VfPath {
    /// Nodes from source to sink, inclusive.
    pub nodes: Vec<NodeId>,
    /// Guards of the traversed edges, in order.
    pub guards: Vec<TermId>,
    /// Kinds of the traversed edges, in order (`guards[i]` and
    /// `kinds[i]` describe the edge `nodes[i] → nodes[i+1]`).
    pub kinds: Vec<EdgeKind>,
    /// Whether any traversed edge is an interference edge.
    pub has_interference: bool,
}

/// Caps bounding one path query.
#[derive(Clone, Copy, Debug)]
pub struct PathLimits {
    /// Maximum nodes on a path.
    pub max_len: usize,
    /// Maximum number of paths returned per (source, sink-set) query.
    pub max_paths: usize,
}

impl Default for PathLimits {
    fn default() -> Self {
        PathLimits {
            max_len: 64,
            max_paths: 128,
        }
    }
}

/// The node set that can reach the sink set, precomputed once per
/// (graph, sink-set) pair by a reverse BFS over `in_edges`. The DFS
/// never expands a node outside this set — such a subtree can yield no
/// path, so skipping it leaves the emitted path sequence (order,
/// truncation, everything) byte-identical while cutting the walk to
/// the productive part of the graph.
#[derive(Clone, Debug)]
pub struct SinkReach {
    can_reach: Vec<bool>,
}

impl SinkReach {
    /// Computes reverse reachability from `sinks` over `vfg`.
    pub fn compute(vfg: &Vfg, sinks: &HashSet<NodeId>) -> SinkReach {
        let mut can_reach = vec![false; vfg.node_count()];
        let mut stack: Vec<NodeId> = Vec::with_capacity(sinks.len());
        for &s in sinks {
            if s.index() < can_reach.len() && !can_reach[s.index()] {
                can_reach[s.index()] = true;
                stack.push(s);
            }
        }
        while let Some(n) = stack.pop() {
            for e in vfg.in_edges(n) {
                if !can_reach[e.from.index()] {
                    can_reach[e.from.index()] = true;
                    stack.push(e.from);
                }
            }
        }
        SinkReach { can_reach }
    }

    /// Whether `n` can reach some sink.
    pub fn reaches(&self, n: NodeId) -> bool {
        self.can_reach.get(n.index()).copied().unwrap_or(false)
    }
}

/// Enumerates simple paths from `source` to any node in `sinks`.
pub fn enumerate_paths(
    vfg: &Vfg,
    source: NodeId,
    sinks: &HashSet<NodeId>,
    limits: PathLimits,
) -> Vec<VfPath> {
    let reach = SinkReach::compute(vfg, sinks);
    enumerate_paths_pruned(vfg, source, sinks, &reach, limits)
}

/// [`enumerate_paths`] with the reverse-reachability set supplied by
/// the caller — use this when many sources are enumerated against the
/// same sink set, so the BFS runs once instead of once per source.
pub fn enumerate_paths_pruned(
    vfg: &Vfg,
    source: NodeId,
    sinks: &HashSet<NodeId>,
    reach: &SinkReach,
    limits: PathLimits,
) -> Vec<VfPath> {
    enumerate_paths_budgeted(vfg, source, sinks, reach, limits).0
}

/// Which enumeration budget cut the search short, if any. A set flag
/// means viable exploration (an extendable prefix toward a sink) was
/// actually skipped — not merely that a limit was reached.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PathTruncation {
    /// The path-count budget fired with exploration remaining.
    pub max_paths: bool,
    /// The path-length budget cut off an extendable prefix.
    pub max_len: bool,
}

impl PathTruncation {
    /// The limit name for an audit certificate; `max_paths` wins when
    /// both fired (it is the cut that abandoned whole subtrees).
    pub fn limit(self) -> Option<&'static str> {
        match (self.max_paths, self.max_len) {
            (true, _) => Some("max_paths"),
            (false, true) => Some("max_len"),
            (false, false) => None,
        }
    }
}

/// [`enumerate_paths_pruned`], also reporting whether a budget
/// truncated the search — the signal behind the audit layer's
/// `path_budget` disposition.
pub fn enumerate_paths_budgeted(
    vfg: &Vfg,
    source: NodeId,
    sinks: &HashSet<NodeId>,
    reach: &SinkReach,
    limits: PathLimits,
) -> (Vec<VfPath>, PathTruncation) {
    let mut out = Vec::new();
    let mut trunc = PathTruncation::default();
    if !reach.reaches(source) {
        return (out, trunc);
    }
    let mut nodes = vec![source];
    let mut guards: Vec<TermId> = Vec::new();
    let mut kinds: Vec<EdgeKind> = Vec::new();
    let mut on_path: HashSet<NodeId> = HashSet::new();
    on_path.insert(source);
    dfs(
        vfg, source, sinks, reach, &limits, &mut nodes, &mut guards, &mut kinds, &mut on_path,
        &mut out, &mut trunc,
    );
    (out, trunc)
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    vfg: &Vfg,
    cur: NodeId,
    sinks: &HashSet<NodeId>,
    reach: &SinkReach,
    limits: &PathLimits,
    nodes: &mut Vec<NodeId>,
    guards: &mut Vec<TermId>,
    kinds: &mut Vec<EdgeKind>,
    on_path: &mut HashSet<NodeId>,
    out: &mut Vec<VfPath>,
    trunc: &mut PathTruncation,
) {
    if out.len() >= limits.max_paths {
        trunc.max_paths = true;
        return;
    }
    if sinks.contains(&cur) && nodes.len() > 1 {
        out.push(VfPath {
            nodes: nodes.clone(),
            guards: guards.clone(),
            kinds: kinds.clone(),
            has_interference: kinds.contains(&EdgeKind::Interference),
        });
        // A sink can also be an intermediate node; keep exploring.
    }
    if nodes.len() >= limits.max_len {
        if vfg
            .out_edges(cur)
            .any(|e| !on_path.contains(&e.to) && reach.reaches(e.to))
        {
            trunc.max_len = true;
        }
        return;
    }
    for e in vfg.out_edges(cur) {
        if on_path.contains(&e.to) || !reach.reaches(e.to) {
            continue;
        }
        nodes.push(e.to);
        guards.push(e.guard);
        kinds.push(e.kind);
        on_path.insert(e.to);
        dfs(
            vfg, e.to, sinks, reach, limits, nodes, guards, kinds, on_path, out, trunc,
        );
        on_path.remove(&e.to);
        kinds.pop();
        guards.pop();
        nodes.pop();
        // No early exit on a spent path budget: remaining viable
        // siblings still enter `dfs`, whose entry check is what marks
        // the truncation (it only fires for exploration genuinely
        // skipped, keeping the `path_budget` audit signal exact).
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canary_ir::{Label, VarId};
    use canary_smt::TermPool;
    use canary_vfg::NodeKind;

    fn def(v: u32, l: u32) -> NodeKind {
        NodeKind::Def {
            var: VarId::new(v),
            label: Label::new(l),
        }
    }

    #[test]
    fn single_edge_path() {
        let mut g = Vfg::new();
        let pool = TermPool::new();
        let a = g.node(def(0, 0));
        let b = g.node(def(1, 1));
        g.add_edge(a, b, EdgeKind::Direct, pool.tt());
        let sinks: HashSet<NodeId> = [b].into_iter().collect();
        let paths = enumerate_paths(&g, a, &sinks, PathLimits::default());
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].nodes, vec![a, b]);
        assert!(!paths[0].has_interference);
    }

    #[test]
    fn diamond_yields_two_paths() {
        let mut g = Vfg::new();
        let pool = TermPool::new();
        let a = g.node(def(0, 0));
        let b = g.node(def(1, 1));
        let c = g.node(def(2, 2));
        let d = g.node(def(3, 3));
        g.add_edge(a, b, EdgeKind::Direct, pool.tt());
        g.add_edge(a, c, EdgeKind::Direct, pool.tt());
        g.add_edge(b, d, EdgeKind::DataDep, pool.tt());
        g.add_edge(c, d, EdgeKind::Interference, pool.tt());
        let sinks: HashSet<NodeId> = [d].into_iter().collect();
        let mut paths = enumerate_paths(&g, a, &sinks, PathLimits::default());
        paths.sort_by_key(|p| p.nodes.clone());
        assert_eq!(paths.len(), 2);
        assert!(paths.iter().any(|p| p.has_interference));
        assert!(paths.iter().any(|p| !p.has_interference));
    }

    #[test]
    fn cycles_do_not_loop_forever() {
        let mut g = Vfg::new();
        let pool = TermPool::new();
        let a = g.node(def(0, 0));
        let b = g.node(def(1, 1));
        let c = g.node(def(2, 2));
        g.add_edge(a, b, EdgeKind::Direct, pool.tt());
        g.add_edge(b, a, EdgeKind::Direct, pool.tt());
        g.add_edge(b, c, EdgeKind::Direct, pool.tt());
        let sinks: HashSet<NodeId> = [c].into_iter().collect();
        let paths = enumerate_paths(&g, a, &sinks, PathLimits::default());
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn max_paths_cap_respected() {
        // A ladder graph with exponentially many paths.
        let mut g = Vfg::new();
        let pool = TermPool::new();
        let mut layer = vec![g.node(def(0, 0))];
        let mut next_id = 1;
        for _ in 0..10 {
            let mut next_layer = Vec::new();
            for _ in 0..2 {
                let n = g.node(def(next_id, next_id));
                next_id += 1;
                for &p in &layer {
                    g.add_edge(p, n, EdgeKind::Direct, pool.tt());
                }
                next_layer.push(n);
            }
            layer = next_layer;
        }
        let end = g.node(def(next_id, next_id));
        for &p in &layer {
            g.add_edge(p, end, EdgeKind::Direct, pool.tt());
        }
        let sinks: HashSet<NodeId> = [end].into_iter().collect();
        let limits = PathLimits {
            max_len: 64,
            max_paths: 16,
        };
        let start = NodeId(0);
        let paths = enumerate_paths(&g, start, &sinks, limits);
        assert_eq!(paths.len(), 16);
    }

    #[test]
    fn pruning_skips_dead_subtrees_without_changing_output() {
        // a → b → sink, plus a large dead branch a → d0 → d1 → … that
        // cannot reach the sink. The pruned walk must produce exactly
        // the same paths in the same order.
        let mut g = Vfg::new();
        let pool = TermPool::new();
        let a = g.node(def(0, 0));
        let b = g.node(def(1, 1));
        let s = g.node(def(2, 2));
        g.add_edge(a, b, EdgeKind::Direct, pool.tt());
        g.add_edge(b, s, EdgeKind::Direct, pool.tt());
        let mut prev = a;
        for i in 0..20 {
            let d = g.node(def(100 + i, 100 + i));
            g.add_edge(prev, d, EdgeKind::Direct, pool.tt());
            prev = d;
        }
        let sinks: HashSet<NodeId> = [s].into_iter().collect();
        let reach = SinkReach::compute(&g, &sinks);
        assert!(reach.reaches(a) && reach.reaches(b) && reach.reaches(s));
        assert!(!reach.reaches(prev));
        let paths = enumerate_paths(&g, a, &sinks, PathLimits::default());
        let pruned = enumerate_paths_pruned(&g, a, &sinks, &reach, PathLimits::default());
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].nodes, pruned[0].nodes);
        assert_eq!(paths[0].guards, pruned[0].guards);
    }

    #[test]
    fn unreachable_source_returns_no_paths() {
        let mut g = Vfg::new();
        let pool = TermPool::new();
        let a = g.node(def(0, 0));
        let b = g.node(def(1, 1));
        let s = g.node(def(2, 2));
        g.add_edge(b, s, EdgeKind::Direct, pool.tt());
        let _ = a;
        let sinks: HashSet<NodeId> = [s].into_iter().collect();
        assert!(enumerate_paths(&g, a, &sinks, PathLimits::default()).is_empty());
    }

    #[test]
    fn sink_as_intermediate_node_is_reported_once_per_visit() {
        let mut g = Vfg::new();
        let pool = TermPool::new();
        let a = g.node(def(0, 0));
        let b = g.node(def(1, 1));
        let c = g.node(def(2, 2));
        g.add_edge(a, b, EdgeKind::Direct, pool.tt());
        g.add_edge(b, c, EdgeKind::Direct, pool.tt());
        let sinks: HashSet<NodeId> = [b, c].into_iter().collect();
        let paths = enumerate_paths(&g, a, &sinks, PathLimits::default());
        // a→b and a→b→c.
        assert_eq!(paths.len(), 2);
    }
}
