//! # canary-detect
//!
//! Guarded reachability detection (§5): concurrency bugs as source-sink
//! problems over the interference-aware value-flow graph. A finding is
//! reported only when the SMT solver proves the aggregated constraints
//! `Φ_all = Φ_guards ∧ Φ_po` (Eq. 5) satisfiable — i.e. some
//! sequentially consistent interleaving realizes the value flow.
//!
//! Four checkers share one engine:
//!
//! | kind | source | sink |
//! |---|---|---|
//! | use-after-free | `free p` | `use q` |
//! | double-free | `free p` | another `free q` |
//! | null-dereference | `p = null` | `use q` |
//! | data-leak | `p = taint` | `sink q` |
//!
//! The §9 extension (lock/unlock mutual exclusion, wait/notify order)
//! plugs additional `Φ_po` conjuncts in via [`SyncModel`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod audit;
pub mod constraints;
pub mod detector;
pub mod path;
pub mod provenance;
pub mod report;
pub mod schedule;
pub mod sync;

pub use audit::{AuditLayer, AuditLog, AuditRecord, AuditSummary, Disposition};
pub use detector::{
    check_all_kinds, check_kind, check_kind_explained, check_kind_traced, DetectContext,
    DetectOptions, DetectStats, MemoryModel, QueryProfile, RefutedCandidate,
};
pub use path::{
    enumerate_paths, enumerate_paths_budgeted, enumerate_paths_pruned, PathLimits, PathTruncation,
    SinkReach, VfPath,
};
pub use provenance::{
    edge_kind_name, EscapeFact, Fingerprint, MhpFact, ModelSlice, ProvEdge, ProvNode, Provenance,
};
pub use report::{dedup_reports, BugKind, BugReport};
pub use schedule::complete_schedule;
pub use sync::{LockRegion, SyncModel};

#[cfg(test)]
mod tests {
    use canary_ir::{parse, CallGraph, MhpAnalysis, Program, ThreadStructure};
    use canary_smt::TermPool;

    use crate::detector::{check_kind, DetectContext, DetectOptions, DetectStats};
    use crate::report::{BugKind, BugReport};

    fn detect(src: &str, kind: BugKind) -> Vec<BugReport> {
        detect_opts(src, kind, &DetectOptions::default())
    }

    fn detect_opts(src: &str, kind: BugKind, opts: &DetectOptions) -> Vec<BugReport> {
        let prog: Program = parse(src).unwrap();
        prog.validate().unwrap();
        let cg = CallGraph::build(&prog);
        let ts = ThreadStructure::compute(&prog, &cg);
        let mhp = MhpAnalysis::new(&prog, &cg, &ts);
        let mut pool = TermPool::new();
        let mut df = canary_dataflow::run(&prog, &cg, &mut pool);
        canary_interference::run(
            &prog,
            &ts,
            &mhp,
            &mut df,
            &mut pool,
            &canary_interference::InterferenceOptions::default(),
        );
        let ctx = DetectContext::new(&prog, &ts, &mhp, &df, opts);
        let mut stats = DetectStats::default();
        check_kind(&ctx, &mut pool, kind, opts, &mut stats)
    }

    const FIG2_BUGFREE: &str = r#"
        fn main(a) {
            x = alloc o1;
            *x = a;
            fork t thread1(x);
            if (theta1) {
                c = *x;
                use c;
            }
        }
        fn thread1(y) {
            b = alloc o2;
            if (!theta1) {
                *y = b;
                free b;
            }
        }
    "#;

    #[test]
    fn fig2_false_positive_is_refuted() {
        // The paper's flagship example: contradictory path conditions
        // make the inter-thread UAF infeasible — no report.
        let reports = detect(FIG2_BUGFREE, BugKind::UseAfterFree);
        assert!(reports.is_empty(), "{reports:?}");
    }

    #[test]
    fn fig2_variant_without_contradiction_is_reported() {
        // Drop the conflicting conditions: the bug becomes real.
        let src = r#"
            fn main(a) {
                x = alloc o1;
                *x = a;
                fork t thread1(x);
                c = *x;
                use c;
            }
            fn thread1(y) {
                b = alloc o2;
                *y = b;
                free b;
            }
        "#;
        let reports = detect(src, BugKind::UseAfterFree);
        assert_eq!(reports.len(), 1, "{reports:?}");
        assert!(reports[0].inter_thread);
    }

    #[test]
    fn sequential_uaf_detected() {
        let reports = detect(
            "fn main() { p = alloc o; free p; use p; }",
            BugKind::UseAfterFree,
        );
        assert_eq!(reports.len(), 1);
        assert!(!reports[0].inter_thread);
    }

    #[test]
    fn use_before_free_not_reported() {
        let reports = detect(
            "fn main() { p = alloc o; use p; free p; }",
            BugKind::UseAfterFree,
        );
        assert!(reports.is_empty(), "{reports:?}");
    }

    #[test]
    fn free_after_join_use_not_reported() {
        // The child uses the pointer, the parent frees it only after
        // joining: the order constraints refute the UAF.
        let reports = detect(
            "fn main() { p = alloc o; fork t w(p); join t; free p; }
             fn w(q) { use q; }",
            BugKind::UseAfterFree,
        );
        assert!(reports.is_empty(), "{reports:?}");
    }

    #[test]
    fn free_racing_child_use_is_reported() {
        // Without the join, free and use race: report.
        let reports = detect(
            "fn main() { p = alloc o; fork t w(p); free p; }
             fn w(q) { use q; }",
            BugKind::UseAfterFree,
        );
        assert_eq!(reports.len(), 1, "{reports:?}");
        assert!(reports[0].inter_thread);
    }

    #[test]
    fn double_free_across_threads_detected() {
        let reports = detect(
            "fn main() { p = alloc o; fork t w(p); free p; }
             fn w(q) { free q; }",
            BugKind::DoubleFree,
        );
        assert_eq!(reports.len(), 1, "{reports:?}");
    }

    #[test]
    fn single_free_is_not_double() {
        let reports = detect(
            "fn main() { p = alloc o; free p; }",
            BugKind::DoubleFree,
        );
        assert!(reports.is_empty(), "{reports:?}");
    }

    #[test]
    fn exclusive_branch_frees_are_not_double() {
        let reports = detect(
            "fn main() { p = alloc o; if (c) { free p; } else { q = p; free q; } }",
            BugKind::DoubleFree,
        );
        assert!(reports.is_empty(), "{reports:?}");
    }

    #[test]
    fn null_deref_through_shared_memory() {
        let reports = detect(
            "fn main() {
                cell = alloc c;
                v = alloc o;
                *cell = v;
                fork t w(cell);
                y = *cell;
                use y;
             }
             fn w(slot) {
                n = null;
                *slot = n;
             }",
            BugKind::NullDeref,
        );
        assert_eq!(reports.len(), 1, "{reports:?}");
        assert!(reports[0].inter_thread);
    }

    #[test]
    fn null_overwritten_before_use_not_reported() {
        // Sequential: null stored, then overwritten by a valid pointer
        // (strong update), then loaded: no null-deref.
        let reports = detect(
            "fn main() {
                cell = alloc c;
                n = null;
                *cell = n;
                v = alloc o;
                *cell = v;
                y = *cell;
                use y;
             }",
            BugKind::NullDeref,
        );
        assert!(reports.is_empty(), "{reports:?}");
    }

    #[test]
    fn taint_leak_across_threads() {
        let reports = detect(
            "fn main() {
                cell = alloc c;
                s = taint;
                *cell = s;
                fork t w(cell);
             }
             fn w(slot) {
                y = *slot;
                sink y;
             }",
            BugKind::DataLeak,
        );
        assert_eq!(reports.len(), 1, "{reports:?}");
    }

    #[test]
    fn untainted_sink_is_clean() {
        let reports = detect(
            "fn main() { v = alloc o; sink v; }",
            BugKind::DataLeak,
        );
        assert!(reports.is_empty(), "{reports:?}");
    }

    #[test]
    fn inter_thread_only_filters_sequential_findings() {
        let opts = DetectOptions {
            inter_thread_only: true,
            ..DetectOptions::default()
        };
        let reports = detect_opts(
            "fn main() { p = alloc o; free p; use p; }",
            BugKind::UseAfterFree,
            &opts,
        );
        assert!(reports.is_empty());
    }

    #[test]
    fn lock_protected_flow_still_reported_when_feasible() {
        // Locks serialize the two sections but either order remains
        // possible, so the UAF stays feasible and must be reported.
        let reports = detect(
            "fn main() {
                m = alloc mu;
                p = alloc o;
                fork t w(p, m);
                lock m;
                free p;
                unlock m;
             }
             fn w(q, mu2) {
                lock mu2;
                use q;
                unlock mu2;
             }",
            BugKind::UseAfterFree,
        );
        assert_eq!(reports.len(), 1, "{reports:?}");
    }

    #[test]
    fn inter_thread_report_carries_full_provenance() {
        let src = r#"
            fn main(a) {
                x = alloc o1;
                *x = a;
                fork t thread1(x);
                c = *x;
                use c;
            }
            fn thread1(y) {
                b = alloc o2;
                *y = b;
                free b;
            }
        "#;
        let reports = detect(src, BugKind::UseAfterFree);
        assert_eq!(reports.len(), 1, "{reports:?}");
        let prov = reports[0].provenance.as_ref().expect("provenance captured");
        assert_eq!(prov.nodes.len(), reports[0].path.len());
        assert_eq!(prov.edges.len(), prov.nodes.len() - 1);
        // The cross-thread step must be licensed by an escape fact and
        // have its MHP consultation recorded.
        let licensed: Vec<_> = prov.edges.iter().filter(|e| e.escape.is_some()).collect();
        assert!(!licensed.is_empty(), "{prov:?}");
        assert!(licensed
            .iter()
            .all(|e| e.escape.as_ref().unwrap().alloc_site.is_some()));
        assert_eq!(prov.mhp.len(), licensed.len());
        assert!(prov.mhp.iter().any(|m| m.parallel));
        // The confirmed finding carries the satisfying model slice,
        // consistent with the report's own schedule and guards.
        let model = prov.model.as_ref().expect("sat candidate has a model slice");
        assert_eq!(model.schedule, reports[0].schedule);
        assert_eq!(model.guards, reports[0].guards);
        assert!(!model.order.is_empty());
        // Exports don't panic and mention the licensed object.
        let dot = prov.to_dot("uaf");
        assert!(dot.contains("via escaped"));
        let json = serde_json::to_string(&prov.to_json()).unwrap();
        assert!(json.contains("\"escape\""));
    }

    #[test]
    fn sequential_report_provenance_has_no_licensed_edges() {
        let reports = detect(
            "fn main() { p = alloc o; free p; use p; }",
            BugKind::UseAfterFree,
        );
        let prov = reports[0].provenance.as_ref().unwrap();
        assert!(prov.edges.iter().all(|e| e.escape.is_none()));
        assert!(prov.mhp.is_empty());
        assert!(prov.model.is_some());
    }

    #[test]
    fn double_lock_reacquisition_detected() {
        let reports = detect(
            "fn main() { m = alloc mu; n = m; lock m; lock n; unlock n; }",
            BugKind::DoubleLock,
        );
        assert_eq!(reports.len(), 1, "{reports:?}");
        assert!(!reports[0].inter_thread);
        let prov = reports[0].provenance.as_ref().expect("lock provenance");
        assert_eq!(prov.nodes.len(), 2);
        assert!(prov.edges[0].guard.contains("held"));
    }

    #[test]
    fn unlock_between_acquisitions_is_not_double_lock() {
        let reports = detect(
            "fn main() { m = alloc mu; lock m; unlock m; lock m; unlock m; }",
            BugKind::DoubleLock,
        );
        assert!(reports.is_empty(), "{reports:?}");
    }

    #[test]
    fn cross_thread_contention_is_not_double_lock() {
        // The parent holds the mutex across the fork while the child
        // acquires it: contention, not re-acquisition.
        let reports = detect(
            "fn main() { m = alloc mu; lock m; fork t w(m); unlock m; join t; }
             fn w(n) { lock n; unlock n; }",
            BugKind::DoubleLock,
        );
        assert!(reports.is_empty(), "{reports:?}");
    }

    #[test]
    fn conflicting_lock_orders_detected() {
        let reports = detect(
            "fn main() {
                a = alloc ma; b = alloc mb;
                fork t w(a, b);
                lock a; lock b; unlock b; unlock a;
                join t;
             }
             fn w(x, y) { lock y; lock x; unlock x; unlock y; }",
            BugKind::ConflictLock,
        );
        assert_eq!(reports.len(), 1, "{reports:?}");
        assert!(reports[0].inter_thread);
        // Source/sink are the extreme blocked (inner) acquisitions.
        assert!(reports[0].source < reports[0].sink);
        let prov = reports[0].provenance.as_ref().expect("cycle provenance");
        assert_eq!(prov.nodes.len(), 4);
        assert!(prov.mhp.iter().all(|m| m.parallel));
    }

    #[test]
    fn consistent_lock_order_is_clean() {
        let reports = detect(
            "fn main() {
                a = alloc ma; b = alloc mb;
                fork t w(a, b);
                lock a; lock b; unlock b; unlock a;
                join t;
             }
             fn w(x, y) { lock x; lock y; unlock y; unlock x; }",
            BugKind::ConflictLock,
        );
        assert!(reports.is_empty(), "{reports:?}");
    }

    #[test]
    fn join_serialized_lock_orders_are_clean() {
        // Opposite orders, but the parent only locks after joining the
        // child: no interleaving blocks.
        let reports = detect(
            "fn main() {
                a = alloc ma; b = alloc mb;
                fork t w(a, b);
                join t;
                lock a; lock b; unlock b; unlock a;
             }
             fn w(x, y) { lock y; lock x; unlock x; unlock y; }",
            BugKind::ConflictLock,
        );
        assert!(reports.is_empty(), "{reports:?}");
    }

    #[test]
    fn gate_lock_suppresses_conflict_report() {
        // Both acquisition sequences run under a common gate mutex, so
        // the opposite inner orders can never interleave into a cycle.
        let reports = detect(
            "fn main() {
                g = alloc mg; a = alloc ma; b = alloc mb;
                fork t w(g, a, b);
                lock g; lock a; lock b; unlock b; unlock a; unlock g;
                join t;
             }
             fn w(h, x, y) { lock h; lock y; lock x; unlock x; unlock y; unlock h; }",
            BugKind::ConflictLock,
        );
        assert!(reports.is_empty(), "{reports:?}");
    }

    #[test]
    fn report_paths_are_rendered() {
        let reports = detect(
            "fn main() { p = alloc o; free p; use p; }",
            BugKind::UseAfterFree,
        );
        assert!(!reports[0].path.is_empty());
        assert!(reports[0].constraint.contains("O"));
    }
}
