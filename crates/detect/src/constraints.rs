//! Constraint aggregation: `Φ_all = Φ_guards ∧ Φ_po` (Eq. 5).
//!
//! Guards are conjoined along the path (Eq. 3); the partial-order
//! constraints `Φ_po` (Eq. 4) are generated *lazily*, at checking time,
//! over the set of execution events the query mentions — the path
//! labels, the source and sink, and every event named by an order atom
//! inside the aggregated guards (the competing stores of Eq. 2). For
//! every event pair ordered by the program order `<P` — control flow
//! plus fork/join semantics, as decided by [`OrderGraph`] — an explicit
//! order atom is conjoined so the order theory can combine them with
//! the load-store constraints transitively.

use std::collections::BTreeSet;

use canary_ir::{Label, OrderGraph};
use canary_smt::{TermId, TermPool};

/// Builds `Φ_po` over the given events (Eq. 4, extended to ground every
/// event the guards mention).
pub fn partial_order_constraints(
    pool: &mut TermPool,
    og: &OrderGraph<'_>,
    events: &BTreeSet<Label>,
) -> TermId {
    partial_order_constraints_with(pool, og, events, &|_, _| true)
}

/// `Φ_po` with a *retention policy*: the §9 relaxed-memory extension
/// drops the program-order constraints a weaker memory model does not
/// enforce (TSO: store→load to different locations; PSO: additionally
/// store→store). `keep(a, b)` decides whether the ordered pair `a <P b`
/// is encoded.
pub fn partial_order_constraints_with(
    pool: &mut TermPool,
    og: &OrderGraph<'_>,
    events: &BTreeSet<Label>,
    keep: &dyn Fn(Label, Label) -> bool,
) -> TermId {
    let evs: Vec<Label> = events.iter().copied().collect();
    let mut parts = Vec::new();
    for i in 0..evs.len() {
        for j in (i + 1)..evs.len() {
            let (a, b) = (evs[i], evs[j]);
            if og.happens_before(a, b) {
                if keep(a, b) {
                    parts.push(pool.order_lt(a.0, b.0));
                }
            } else if og.happens_before(b, a) && keep(b, a) {
                parts.push(pool.order_lt(b.0, a.0));
            }
        }
    }
    pool.and(parts)
}

/// Collects every execution event a constraint term mentions through
/// its order atoms.
pub fn events_of(pool: &TermPool, t: TermId) -> BTreeSet<Label> {
    let mut out = BTreeSet::new();
    for (a, b) in pool.atoms_of(t).orders {
        out.insert(Label(a));
        out.insert(Label(b));
    }
    out
}

/// Assembles `Φ_all` for one source-sink query:
/// `Φ_guards(π) ∧ Φ_src ∧ Φ_extra ∧ Φ_po(events)`.
pub fn assemble(
    pool: &mut TermPool,
    og: &OrderGraph<'_>,
    path_guards: &[TermId],
    path_labels: &[Label],
    extra: &[TermId],
) -> TermId {
    assemble_with(pool, og, path_guards, path_labels, extra, &|_, _| true)
}

/// [`assemble`] with an explicit program-order retention policy.
pub fn assemble_with(
    pool: &mut TermPool,
    og: &OrderGraph<'_>,
    path_guards: &[TermId],
    path_labels: &[Label],
    extra: &[TermId],
    keep: &dyn Fn(Label, Label) -> bool,
) -> TermId {
    let mut conj: Vec<TermId> = path_guards.to_vec();
    conj.extend_from_slice(extra);
    let guards = pool.and(conj);
    if guards == pool.ff() {
        return guards;
    }
    let mut events = events_of(pool, guards);
    events.extend(path_labels.iter().copied());
    let po = partial_order_constraints_with(pool, og, &events, keep);
    pool.and2(guards, po)
}

#[cfg(test)]
mod tests {
    use super::*;
    use canary_ir::{parse, CallGraph};
    use canary_smt::{check, SolverOptions, SolverStats};

    #[test]
    fn po_orders_straightline_labels() {
        let prog = parse("fn main() { p = alloc o; free p; use p; }").unwrap();
        let cg = CallGraph::build(&prog);
        let og = OrderGraph::build(&prog, &cg);
        let mut pool = TermPool::new();
        let events: BTreeSet<Label> = prog.labels().collect();
        let po = partial_order_constraints(&mut pool, &og, &events);
        // Adding the reversed order of two straightline statements must
        // contradict Φ_po.
        let rev = pool.order_lt(2, 1);
        let t = pool.and2(po, rev);
        assert_eq!(t, pool.ff());
    }

    #[test]
    fn events_of_reads_order_atoms() {
        let mut pool = TermPool::new();
        let o = pool.order_lt(3, 7);
        let b = pool.bool_atom(0);
        let t = pool.and2(o, b);
        let evs = events_of(&pool, t);
        assert!(evs.contains(&Label(3)));
        assert!(evs.contains(&Label(7)));
        assert_eq!(evs.len(), 2);
    }

    #[test]
    fn assemble_grounds_guard_events() {
        // A guard that orders l2 before l1 while program order says
        // l1 < l2 must assemble to an unsatisfiable constraint.
        let prog = parse("fn main() { p = alloc o; free p; use p; }").unwrap();
        let cg = CallGraph::build(&prog);
        let og = OrderGraph::build(&prog, &cg);
        let mut pool = TermPool::new();
        let bad = pool.order_lt(2, 1); // "use before free"
        let all = assemble(&mut pool, &og, &[bad], &[], &[]);
        let stats = SolverStats::default();
        assert!(!check(&pool, all, &SolverOptions::default(), &stats).is_sat());
    }

    #[test]
    fn assemble_keeps_feasible_constraints_sat() {
        let prog = parse("fn main() { p = alloc o; free p; use p; }").unwrap();
        let cg = CallGraph::build(&prog);
        let og = OrderGraph::build(&prog, &cg);
        let mut pool = TermPool::new();
        let fine = pool.order_lt(1, 2);
        let all = assemble(&mut pool, &og, &[fine], &[], &[]);
        let stats = SolverStats::default();
        assert!(check(&pool, all, &SolverOptions::default(), &stats).is_sat());
    }

    #[test]
    fn transitive_cycle_through_program_order_detected() {
        // Guards say O_use < O_alloc (label 2 < label 0); program order
        // says 0 < 1 < 2; the theory must find the cycle.
        let prog = parse("fn main() { p = alloc o; free p; use p; }").unwrap();
        let cg = CallGraph::build(&prog);
        let og = OrderGraph::build(&prog, &cg);
        let mut pool = TermPool::new();
        let back = pool.order_lt(2, 0);
        let all = assemble(&mut pool, &og, &[back], &[], &[]);
        let stats = SolverStats::default();
        assert!(!check(&pool, all, &SolverOptions::default(), &stats).is_sat());
    }
}
