//! Witness-schedule completion.
//!
//! The SMT model orders only the events that appear in some order atom
//! of `Φ_all`; a report's raw witness therefore names value-flow events
//! but not the fork that starts the thread executing them, nor the join
//! a later event waits behind. [`complete_schedule`] closes the event
//! set under those control dependencies and linearizes it into one
//! total order consistent with both the model and the interprocedural
//! program order — a *replayable prefix* the concrete oracle
//! (`canary-oracle`) can execute step by step.

use std::collections::{BTreeMap, BTreeSet};

use canary_ir::{Label, OrderGraph, Program};

use crate::detector::MemoryModel;

/// Completes a raw SMT witness into a replayable schedule.
///
/// The returned sequence contains the witness events, the report's
/// source and sink, and every fork/join site that happens-before any of
/// them (so forked threads exist, and join-ordered events come after
/// their join), in one total order that respects:
///
/// 1. the model's witness order (`witness[i]` before `witness[i+1]`),
/// 2. the program-order pairs the memory model retains — under TSO/PSO
///    the witness may legitimately invert a relaxed store→load or
///    store→store pair (the store's schedule slot is then its *flush*
///    point on the store-buffer oracle), so relaxed pairs contribute no
///    edge and the witness chain alone decides their order.
///
/// Linearization is Kahn's algorithm with smallest-label tie-breaking,
/// so the result is deterministic.
pub fn complete_schedule(
    prog: &Program,
    og: &OrderGraph,
    model: MemoryModel,
    witness: &[Label],
    source: Label,
    sink: Label,
) -> Vec<Label> {
    let mut events: BTreeSet<Label> = witness.iter().copied().collect();
    events.insert(source);
    events.insert(sink);

    // Close under fork/join control dependencies: a fork or join site
    // that happens-before an event must execute before it, so it
    // belongs in the prefix. Adding a fork can make an outer fork
    // relevant (nested threads), hence the fixed point.
    loop {
        let mut added = false;
        for info in &prog.threads {
            for site in [info.fork_site, info.join_site].into_iter().flatten() {
                if events.contains(&site) {
                    continue;
                }
                if events.iter().any(|&e| og.happens_before(site, e)) {
                    events.insert(site);
                    added = true;
                }
            }
        }
        if !added {
            break;
        }
    }

    // Order edges: program order between ordered pairs, plus the
    // model's witness chain.
    let mut succs: BTreeMap<Label, BTreeSet<Label>> = BTreeMap::new();
    let mut indeg: BTreeMap<Label, usize> = events.iter().map(|&e| (e, 0)).collect();
    let add_edge = |a: Label, b: Label, succs: &mut BTreeMap<Label, BTreeSet<Label>>,
                        indeg: &mut BTreeMap<Label, usize>| {
        if a != b && succs.entry(a).or_default().insert(b) {
            *indeg.get_mut(&b).expect("edge target is an event") += 1;
        }
    };
    let keep = crate::detector::order_policy(prog, model);
    let evs: Vec<Label> = events.iter().copied().collect();
    for (i, &a) in evs.iter().enumerate() {
        for &b in &evs[i + 1..] {
            // `happens_before` both ways means the labels were merged by
            // context cloning; skip to keep the graph acyclic. Pairs the
            // memory model relaxes contribute no edge either — the
            // witness chain is free to invert them.
            match (og.happens_before(a, b), og.happens_before(b, a)) {
                (true, false) if keep(a, b) => add_edge(a, b, &mut succs, &mut indeg),
                (false, true) if keep(b, a) => add_edge(b, a, &mut succs, &mut indeg),
                _ => {}
            }
        }
    }
    for w in witness.windows(2) {
        add_edge(w[0], w[1], &mut succs, &mut indeg);
    }

    // Kahn with smallest-label tie-breaking.
    let mut ready: BTreeSet<Label> = indeg
        .iter()
        .filter(|&(_, &d)| d == 0)
        .map(|(&e, _)| e)
        .collect();
    let mut out = Vec::with_capacity(events.len());
    while let Some(&e) = ready.iter().next() {
        ready.remove(&e);
        out.push(e);
        if let Some(next) = succs.get(&e) {
            for &n in next {
                let d = indeg.get_mut(&n).expect("edge target has an indegree");
                *d -= 1;
                if *d == 0 {
                    ready.insert(n);
                }
            }
        }
    }
    if out.len() < events.len() {
        // A cycle between the witness chain and program order should be
        // impossible (the model satisfies Φ_po); fall back to the raw
        // witness rather than emit a truncated prefix.
        let mut rest: Vec<Label> = events
            .iter()
            .copied()
            .filter(|e| !out.contains(e))
            .collect();
        rest.sort_unstable();
        out.extend(rest);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use canary_ir::{parse, CallGraph};

    fn setup(src: &str) -> (Program, CallGraph) {
        let prog = parse(src).unwrap();
        prog.validate().unwrap();
        let cg = CallGraph::build(&prog);
        (prog, cg)
    }

    #[test]
    fn fork_site_is_pulled_into_schedule() {
        let (prog, cg) = setup(
            "fn main() { p = alloc o; fork t w(p); free p; }
             fn w(q) { use q; }",
        );
        let og = OrderGraph::build(&prog, &cg);
        let free = prog.free_sites()[0];
        let deref = prog.deref_sites()[0];
        let sched = complete_schedule(&prog, &og, MemoryModel::Sc, &[free, deref], free, deref);
        let fork = prog.threads[1].fork_site.unwrap();
        let pos = |l: Label| sched.iter().position(|&x| x == l).unwrap();
        assert!(sched.contains(&fork), "{sched:?}");
        // The fork precedes the child's deref; the witness order is kept.
        assert!(pos(fork) < pos(deref));
        assert!(pos(free) < pos(deref));
    }

    #[test]
    fn join_ordering_is_respected() {
        let (prog, cg) = setup(
            "fn main() { p = alloc o; fork t w(p); join t; free p; }
             fn w(q) { use q; }",
        );
        let og = OrderGraph::build(&prog, &cg);
        let free = prog.free_sites()[0];
        let deref = prog.deref_sites()[0];
        // Witness says use-then-free (the only feasible order here).
        let sched = complete_schedule(&prog, &og, MemoryModel::Sc, &[deref, free], deref, free);
        let join = prog.threads[1].join_site.unwrap();
        let pos = |l: Label| sched.iter().position(|&x| x == l).unwrap();
        assert!(sched.contains(&join), "{sched:?}");
        assert!(pos(join) < pos(free));
        assert!(pos(deref) < pos(join) || pos(deref) < pos(free));
    }

    #[test]
    fn schedule_has_no_duplicates() {
        let (prog, cg) = setup(
            "fn main() { p = alloc o; fork t w(p); free p; }
             fn w(q) { use q; }",
        );
        let og = OrderGraph::build(&prog, &cg);
        let free = prog.free_sites()[0];
        let deref = prog.deref_sites()[0];
        let sched = complete_schedule(&prog, &og, MemoryModel::Sc, &[free, deref, free], free, deref);
        let set: BTreeSet<Label> = sched.iter().copied().collect();
        assert_eq!(set.len(), sched.len());
    }
}
