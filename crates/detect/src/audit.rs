//! The analysis audit layer: one terminal disposition, with a
//! machine-checkable certificate, for every candidate source/sink pair
//! the pipeline ever considers.
//!
//! Positive findings explain themselves with provenance DAGs (PR 5);
//! this module gives the *negative* space the same treatment. Each
//! suppression layer — interference-time MHP and lock-sharpened
//! pruning (Alg. 2), the Φ-prefilter, UNSAT-core subsumption and the
//! verdict memo (§5.2), fingerprint dedup — records *why* a candidate
//! died, and a reconciliation invariant
//! (`candidates == reported + deduped + Σ pruned-by-reason`) turns
//! silent candidate loss anywhere in the sharded/cubed/spilled
//! pipeline into a hard failure.
//!
//! Determinism contract: every record is derived from term-determined
//! data only (the hash-consed query term, the candidate enumeration
//! order, the interference fixpoint's committed state), so the JSONL
//! export is byte-identical across `--threads`, `--solver-strategy`,
//! `--dispatch`, `--shards` and cube settings. Strategy-dependent
//! refinements (the solver's assumption core) ride along in a
//! separate display-only field that never reaches the canonical
//! export.

use std::collections::HashMap;

use canary_ir::Label;
use canary_smt::{TermId, TermPool, WorkerLoad};

use crate::provenance::Fingerprint;
use crate::report::BugKind;

/// Which pipeline layer disposed of the candidate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AuditLayer {
    /// Alg. 2: a store/load pair suppressed before any VFG edge (and
    /// hence any candidate path) could exist.
    Interference,
    /// §5: a source/sink candidate of one of the checkers.
    Detect,
}

impl AuditLayer {
    fn name(self) -> &'static str {
        match self {
            AuditLayer::Interference => "interference",
            AuditLayer::Detect => "detect",
        }
    }
}

/// The terminal disposition of one candidate, with its certificate.
#[derive(Clone, Debug, PartialEq)]
pub enum Disposition {
    /// Confirmed and emitted as a finding.
    Reported {
        /// The finding's stable fingerprint.
        fingerprint: Fingerprint,
    },
    /// Confirmed but collapsed into an equivalent finding.
    Deduped {
        /// Fingerprint of the surviving report.
        winner: Fingerprint,
    },
    /// Store/load pair suppressed by the MHP analysis: the facts
    /// consulted showed no interleaving lets the store reach the load.
    PrunedMhp {
        /// Whether MHP said the pair may run concurrently.
        parallel: bool,
        /// Whether the store is ordered (program/fork/join order)
        /// before the load.
        ordered_before: bool,
    },
    /// Store/load pair suppressed by lock-sharpened MHP (PR 7): both
    /// accesses sit in critical sections of the same lock class and a
    /// killing store overwrites the value before the section ends.
    PrunedLockSharpen {
        /// The shared lock class (allocation-site equivalence class).
        class: usize,
        /// The store that overwrites the value inside the region.
        killing_store: Label,
    },
    /// Store/load pair refuted by program order alone: the load is
    /// ordered before the store, so the value can never flow.
    PrunedStoreOrder,
    /// Killed by the Φ-prefilter without any solver work.
    Prefiltered {
        /// `true` when the semi-decision prefilter found inconsistent
        /// top-level order literals (a unit cycle); `false` when the
        /// constraints folded to `false` at construction
        /// (complementary branch guards or order atoms).
        unit_cycle: bool,
    },
    /// Refuted without solving: the candidate's conjunct set contains
    /// a previously refuted conjunct set.
    UnsatCore {
        /// Rendered conjuncts of the refuted set (capped; see
        /// [`render_conjuncts`]).
        conjuncts: Vec<String>,
        /// Hash-consed term ids of the full conjunct set.
        conjunct_ids: Vec<usize>,
        /// Audit sequence number of the earlier candidate whose
        /// refuted set this one's conjuncts contain, if any; `None`
        /// for the first refutation of this conjunct set.
        subsumed_by: Option<usize>,
    },
    /// Refuted by the verdict memo: an identical hash-consed query was
    /// already refuted.
    CacheMemo {
        /// Audit sequence number of the original refuted candidate.
        origin: usize,
    },
    /// Path enumeration from this source was truncated by a budget, so
    /// candidates past the cut were never materialized.
    PathBudget {
        /// Which limit fired: `"max_paths"` or `"max_len"`.
        limit: &'static str,
    },
    /// Intra-thread candidate dropped by `--inter-thread-only`.
    ScopeFiltered,
}

impl Disposition {
    /// Machine-readable tag used in the JSONL export.
    pub fn tag(&self) -> &'static str {
        match self {
            Disposition::Reported { .. } => "reported",
            Disposition::Deduped { .. } => "deduped",
            Disposition::PrunedMhp { .. } => "pruned_mhp",
            Disposition::PrunedLockSharpen { .. } => "pruned_lock_sharpen",
            Disposition::PrunedStoreOrder => "pruned_store_order",
            Disposition::Prefiltered { .. } => "prefiltered",
            Disposition::UnsatCore { .. } => "unsat_core",
            Disposition::CacheMemo { .. } => "cache_memo",
            Disposition::PathBudget { .. } => "path_budget",
            Disposition::ScopeFiltered => "scope_filtered",
        }
    }
}

/// One audited candidate: where it came from and how it died.
#[derive(Clone, Debug)]
pub struct AuditRecord {
    /// Position in the run-wide audit sequence (creation order:
    /// interference prunes first, then detect candidates in
    /// enumeration order). Deterministic for fixed analysis flags.
    pub seq: usize,
    /// Which layer considered the pair.
    pub layer: AuditLayer,
    /// Bug kind for detect-layer candidates, `None` for interference
    /// store/load pairs.
    pub kind: Option<BugKind>,
    /// Source label (the store, for interference pairs).
    pub source: Label,
    /// Sink label (the load, for interference pairs). `None` for
    /// source-scoped records like [`Disposition::PathBudget`].
    pub sink: Option<Label>,
    /// The allocation object the pair flows through, when known.
    pub object: Option<String>,
    /// Terminal disposition. `None` only while the candidate is in
    /// flight; a `None` surviving to [`AuditLog::reconcile`] is a
    /// pipeline bug.
    pub disposition: Option<Disposition>,
    /// Strategy-dependent refinement: the solver's assumption core,
    /// rendered. Display-only (`canary why-not`), excluded from the
    /// canonical JSONL export.
    pub solver_core: Option<Vec<String>>,
}

impl AuditRecord {
    /// Human-readable explanation of the disposition, as printed by
    /// `canary why-not`.
    pub fn describe(&self) -> String {
        let mut s = match &self.disposition {
            None => "candidate still in flight (pipeline bug: no terminal disposition)".to_string(),
            Some(Disposition::Reported { fingerprint }) => {
                format!("reported: confirmed finding {fingerprint}")
            }
            Some(Disposition::Deduped { winner }) => {
                format!("deduped: duplicate of finding {winner} (shortest witness kept)")
            }
            Some(Disposition::PrunedMhp {
                parallel,
                ordered_before,
            }) => format!(
                "pair pruned by MHP analysis: store {} and load {} {}{}",
                self.source,
                self.sink.map_or_else(|| "?".into(), |l| l.to_string()),
                if *parallel {
                    "may run in parallel"
                } else {
                    "never run in parallel"
                },
                if *ordered_before {
                    ""
                } else {
                    " and the store is not ordered before the load"
                },
            ),
            Some(Disposition::PrunedLockSharpen {
                class,
                killing_store,
            }) => format!(
                "pair pruned by lock-sharpened MHP: both accesses in class-{class} critical \
                 sections; killing store at {killing_store} overwrites the value before the \
                 region ends"
            ),
            Some(Disposition::PrunedStoreOrder) => format!(
                "pair pruned by program order: load {} is ordered before store {}",
                self.sink.map_or_else(|| "?".into(), |l| l.to_string()),
                self.source,
            ),
            Some(Disposition::Prefiltered { unit_cycle: false }) => {
                "candidate prefiltered: constraints fold to false at construction \
                 (complementary branch guards or order atoms)"
                    .to_string()
            }
            Some(Disposition::Prefiltered { unit_cycle: true }) => {
                "candidate prefiltered: inconsistent top-level order literals \
                 (unit cycle) caught by the semi-decision prefilter"
                    .to_string()
            }
            Some(Disposition::UnsatCore {
                conjuncts,
                subsumed_by,
                ..
            }) => {
                let over = format!("UNSAT over conjuncts [{}]", conjuncts.join(", "));
                match subsumed_by {
                    Some(origin) => format!(
                        "candidate refuted without solving: conjunct set contains the \
                         refuted set of candidate #{origin} ({over})"
                    ),
                    None => format!("candidate refuted by the solver: {over}"),
                }
            }
            Some(Disposition::CacheMemo { origin }) => format!(
                "candidate refuted by memo: identical constraint already refuted as \
                 candidate #{origin}"
            ),
            Some(Disposition::PathBudget { limit }) => format!(
                "path enumeration from {} truncated at the `{limit}` budget — candidates \
                 past the cut were never materialized",
                self.source
            ),
            Some(Disposition::ScopeFiltered) => {
                "candidate outside scope: intra-thread witness dropped by --inter-thread-only"
                    .to_string()
            }
        };
        if let Some(core) = &self.solver_core {
            s.push_str(&format!(
                "\n  solver assumption core (strategy-dependent): [{}]",
                core.join(", ")
            ));
        }
        s
    }

    /// The canonical JSONL line for this record. Key order is sorted
    /// (serde_json maps are BTree-backed), values are term-determined,
    /// and `solver_core` is deliberately excluded — the line is
    /// byte-identical across every scheduling and strategy knob.
    pub fn to_json(&self) -> serde_json::Value {
        let mut cert = std::collections::BTreeMap::<String, serde_json::Value>::new();
        match &self.disposition {
            None => {}
            Some(Disposition::Reported { fingerprint }) => {
                cert.insert("fingerprint".into(), fingerprint.to_string().into());
            }
            Some(Disposition::Deduped { winner }) => {
                cert.insert("winner".into(), winner.to_string().into());
            }
            Some(Disposition::PrunedMhp {
                parallel,
                ordered_before,
            }) => {
                cert.insert("parallel".into(), (*parallel).into());
                cert.insert("ordered_before".into(), (*ordered_before).into());
            }
            Some(Disposition::PrunedLockSharpen {
                class,
                killing_store,
            }) => {
                cert.insert("class".into(), (*class).into());
                cert.insert("killing_store".into(), killing_store.0.into());
            }
            Some(Disposition::PrunedStoreOrder) => {}
            Some(Disposition::Prefiltered { unit_cycle }) => {
                cert.insert("unit_cycle".into(), (*unit_cycle).into());
            }
            Some(Disposition::UnsatCore {
                conjuncts,
                conjunct_ids,
                subsumed_by,
            }) => {
                cert.insert("conjuncts".into(), conjuncts.clone().into());
                cert.insert(
                    "conjunct_ids".into(),
                    conjunct_ids.iter().map(|&i| i as u64).collect::<Vec<_>>().into(),
                );
                cert.insert(
                    "subsumed_by".into(),
                    subsumed_by.map_or(serde_json::Value::Null, |s| (s as u64).into()),
                );
            }
            Some(Disposition::CacheMemo { origin }) => {
                cert.insert("origin".into(), (*origin as u64).into());
            }
            Some(Disposition::PathBudget { limit }) => {
                cert.insert("limit".into(), (*limit).into());
            }
            Some(Disposition::ScopeFiltered) => {}
        }
        serde_json::json!({
            "seq": self.seq,
            "layer": self.layer.name(),
            "kind": self.kind.map(|k| k.to_string()),
            "source": self.source.0,
            "sink": self.sink.map(|l| l.0),
            "object": self.object,
            "disposition": self.disposition.as_ref().map(Disposition::tag),
            "certificate": serde_json::Value::Object(cert),
        })
    }
}

/// Deterministic per-disposition totals, plus the reconciliation line.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AuditSummary {
    /// Detect-layer candidates considered (everything except
    /// interference pairs and path-budget markers).
    pub candidates: usize,
    /// Confirmed and emitted.
    pub reported: usize,
    /// Confirmed, collapsed by fingerprint dedup.
    pub deduped: usize,
    /// Killed by the Φ-prefilter (construction folds + unit cycles).
    pub prefiltered: usize,
    /// Refuted by solving or by core subsumption.
    pub unsat: usize,
    /// Refuted by the verdict memo.
    pub memoized: usize,
    /// Dropped by `--inter-thread-only`.
    pub scope_filtered: usize,
    /// Path-budget truncation markers (not candidates).
    pub path_budget: usize,
    /// Interference pairs pruned by plain MHP.
    pub pruned_mhp: usize,
    /// Interference pairs pruned by lock-sharpened MHP.
    pub pruned_lock: usize,
    /// Interference pairs refuted by program order.
    pub pruned_order: usize,
}

impl AuditSummary {
    /// The `--stats` reconciliation line.
    pub fn render(&self) -> String {
        format!(
            "audit: {} candidates = {} reported + {} deduped + {} prefiltered + {} unsat + \
             {} memoized + {} scope-filtered; {} path-budget truncations; \
             {} interference pairs pruned (mhp {}, lock {}, order {})",
            self.candidates,
            self.reported,
            self.deduped,
            self.prefiltered,
            self.unsat,
            self.memoized,
            self.scope_filtered,
            self.path_budget,
            self.pruned_mhp + self.pruned_lock + self.pruned_order,
            self.pruned_mhp,
            self.pruned_lock,
            self.pruned_order,
        )
    }
}

/// The run-wide audit log. Lives in `canary_core::Metrics`; filled by
/// the interference fixpoint and the detect pipeline, exported via
/// `--audit-out` and queried by `canary why-not`.
#[derive(Clone, Debug, Default)]
pub struct AuditLog {
    records: Vec<AuditRecord>,
    /// First refuted (non-prefiltered, non-subsumed) occurrence of each
    /// hash-consed query term → its audit seq. Mirrors the solver's
    /// verdict memo, but derived from term identity alone so the
    /// disposition is strategy-invariant.
    first_unsat: HashMap<TermId, usize>,
    /// Conjunct sets (sorted) of first refutations, with their seq.
    /// Mirrors the UNSAT-core subsumption store under the same
    /// term-determined discipline.
    unsat_sets: Vec<(Vec<TermId>, usize)>,
    /// Per-worker dispatcher loads summed across batches.
    /// Timing-dependent — exported only as the volatile
    /// `canary_dispatch_*` metrics family, never in the JSONL.
    pub dispatch_loads: Vec<WorkerLoad>,
}

impl AuditLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// All records, in audit sequence order.
    pub fn records(&self) -> &[AuditRecord] {
        &self.records
    }

    /// Opens a pending detect-layer record for a materialized
    /// candidate; returns its audit id (= seq).
    pub fn begin_candidate(&mut self, kind: BugKind, source: Label, sink: Label) -> usize {
        self.push(AuditLayer::Detect, Some(kind), source, Some(sink), None, None)
    }

    /// Records an immediately-terminal detect-layer disposition (e.g.
    /// a construction-time fold or a scope filter).
    pub fn record_candidate(&mut self, kind: BugKind, source: Label, sink: Label, d: Disposition) {
        self.push(
            AuditLayer::Detect,
            Some(kind),
            source,
            Some(sink),
            None,
            Some(d),
        );
    }

    /// Records a path-budget truncation for `source` (sink unknown:
    /// the budget is exactly why the candidates don't exist).
    pub fn record_path_budget(
        &mut self,
        kind: BugKind,
        source: Label,
        object: Option<String>,
        limit: &'static str,
    ) {
        self.push(
            AuditLayer::Detect,
            Some(kind),
            source,
            None,
            object,
            Some(Disposition::PathBudget { limit }),
        );
    }

    /// Records an interference-layer pruned store/load pair.
    pub fn record_interference_prune(
        &mut self,
        store: Label,
        load: Label,
        object: Option<String>,
        d: Disposition,
    ) {
        self.push(AuditLayer::Interference, None, store, Some(load), object, Some(d));
    }

    fn push(
        &mut self,
        layer: AuditLayer,
        kind: Option<BugKind>,
        source: Label,
        sink: Option<Label>,
        object: Option<String>,
        disposition: Option<Disposition>,
    ) -> usize {
        let seq = self.records.len();
        self.records.push(AuditRecord {
            seq,
            layer,
            kind,
            source,
            sink,
            object,
            disposition,
            solver_core: None,
        });
        seq
    }

    /// Disposes a pending record. Double disposal is a pipeline bug.
    pub fn dispose(&mut self, id: usize, d: Disposition) {
        debug_assert!(
            self.records[id].disposition.is_none(),
            "candidate #{id} disposed twice: {:?} then {:?}",
            self.records[id].disposition,
            d
        );
        self.records[id].disposition = Some(d);
    }

    /// Attaches the display-only solver core to a record.
    pub fn attach_solver_core(&mut self, id: usize, rendered: Vec<String>) {
        self.records[id].solver_core = Some(rendered);
    }

    /// Disposes a refuted candidate, deriving the certificate from
    /// term-determined data only so the disposition is identical under
    /// every solver strategy and scheduling knob:
    ///
    /// 1. prefiltered → [`Disposition::Prefiltered`] (`unit_cycle`
    ///    distinguishes solve-time unit-cycle detection from
    ///    construction folds; the prefilter runs first in both
    ///    strategies, so the flag is strategy-invariant);
    /// 2. a previously refuted identical term → `CacheMemo`;
    /// 3. a conjunct set containing an earlier refuted set →
    ///    `UnsatCore { subsumed_by: Some(_) }`;
    /// 4. otherwise the first refutation of this set →
    ///    `UnsatCore { subsumed_by: None }`, entering the audit-side
    ///    memo and subsumption store (prefiltered queries never enter
    ///    either, mirroring the solver).
    pub fn dispose_unsat(&mut self, id: usize, pool: &TermPool, query: TermId, prefiltered: bool) {
        if prefiltered {
            let unit_cycle = query != pool.ff();
            self.dispose(id, Disposition::Prefiltered { unit_cycle });
            return;
        }
        if let Some(&origin) = self.first_unsat.get(&query) {
            self.dispose(id, Disposition::CacheMemo { origin });
            return;
        }
        let conjs = pool.conjuncts_of(query);
        let subsumed_by = self
            .unsat_sets
            .iter()
            .find(|(set, _)| is_sorted_subset(set, &conjs))
            .map(|&(_, seq)| seq);
        let d = Disposition::UnsatCore {
            conjuncts: render_conjuncts(pool, &conjs),
            conjunct_ids: conjs.iter().map(|c| c.index()).collect(),
            subsumed_by,
        };
        if subsumed_by.is_none() {
            self.unsat_sets.push((conjs, id));
        }
        self.first_unsat.insert(query, id);
        self.dispose(id, d);
    }

    /// Flips `Reported` records whose `(kind, source, sink)` key is no
    /// longer among the emitted reports to `Deduped`. Fingerprint-equal
    /// reports collapse to one survivor, so a dropped record's winner
    /// carries its own fingerprint.
    pub fn apply_report_dedup(&mut self, kept: &std::collections::HashSet<(BugKind, Label, Label)>) {
        for r in &mut self.records {
            let (Some(kind), Some(sink)) = (r.kind, r.sink) else {
                continue;
            };
            if let Some(Disposition::Reported { fingerprint }) = &r.disposition {
                if !kept.contains(&(kind, r.source, sink)) {
                    r.disposition = Some(Disposition::Deduped {
                        winner: *fingerprint,
                    });
                }
            }
        }
    }

    /// Accumulates per-worker dispatcher loads from one solver batch
    /// (index-wise sum; the vector grows to the largest worker count
    /// seen).
    pub fn merge_dispatch_loads(&mut self, loads: &[WorkerLoad]) {
        if self.dispatch_loads.len() < loads.len() {
            self.dispatch_loads.resize(loads.len(), WorkerLoad::default());
        }
        for (acc, l) in self.dispatch_loads.iter_mut().zip(loads) {
            acc.families += l.families;
            acc.stolen += l.stolen;
        }
    }

    /// The reconciliation invariant: every record has exactly one
    /// terminal disposition. Returns the per-disposition totals, or an
    /// error naming the leaked candidates.
    pub fn reconcile(&self) -> Result<AuditSummary, String> {
        let mut s = AuditSummary::default();
        let mut leaked = Vec::new();
        for r in &self.records {
            match &r.disposition {
                None => leaked.push(format!(
                    "#{} {:?} {:?} {} -> {:?}",
                    r.seq, r.layer, r.kind, r.source, r.sink
                )),
                Some(Disposition::Reported { .. }) => s.reported += 1,
                Some(Disposition::Deduped { .. }) => s.deduped += 1,
                Some(Disposition::Prefiltered { .. }) => s.prefiltered += 1,
                Some(Disposition::UnsatCore { .. }) => s.unsat += 1,
                Some(Disposition::CacheMemo { .. }) => s.memoized += 1,
                Some(Disposition::ScopeFiltered) => s.scope_filtered += 1,
                Some(Disposition::PathBudget { .. }) => s.path_budget += 1,
                Some(Disposition::PrunedMhp { .. }) => s.pruned_mhp += 1,
                Some(Disposition::PrunedLockSharpen { .. }) => s.pruned_lock += 1,
                Some(Disposition::PrunedStoreOrder) => s.pruned_order += 1,
            }
        }
        s.candidates = s.reported + s.deduped + s.prefiltered + s.unsat + s.memoized
            + s.scope_filtered;
        if leaked.is_empty() {
            Ok(s)
        } else {
            Err(format!(
                "audit reconciliation failed: {} candidate(s) without a terminal \
                 disposition: {}",
                leaked.len(),
                leaked.join("; ")
            ))
        }
    }

    /// The canonical JSONL export: one sorted-key JSON object per
    /// record, in audit sequence order. Byte-identical across every
    /// scheduling and strategy knob (enforced by
    /// `tests/audit_reconciliation.rs`).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_json().to_string());
            out.push('\n');
        }
        out
    }

    /// Records whose source/sink pair matches the query, for
    /// `canary why-not`. Detect candidates match on `(source, sink)`;
    /// interference pairs on `(store, load)`. Source-scoped records
    /// (path budgets) match on the source alone.
    pub fn find_pair(&self, source: Label, sink: Label) -> Vec<&AuditRecord> {
        self.records
            .iter()
            .filter(|r| r.source == source && (r.sink == Some(sink) || r.sink.is_none()))
            .collect()
    }
}

/// Renders a conjunct set for a certificate: each conjunct capped at
/// 160 characters, at most 16 conjuncts listed (`…(+N more)` tails the
/// list). Terms are hash-consed, so the rendering is deterministic.
fn render_conjuncts(pool: &TermPool, conjs: &[TermId]) -> Vec<String> {
    const MAX_CONJ: usize = 16;
    const MAX_LEN: usize = 160;
    let mut out: Vec<String> = conjs
        .iter()
        .take(MAX_CONJ)
        .map(|&c| {
            let mut s = pool.render(c);
            if s.len() > MAX_LEN {
                s.truncate(MAX_LEN);
                s.push('…');
            }
            s
        })
        .collect();
    if conjs.len() > MAX_CONJ {
        out.push(format!("…(+{} more)", conjs.len() - MAX_CONJ));
    }
    out
}

/// Whether sorted `sub` ⊆ sorted `sup` (two-pointer walk). Local copy
/// of the solver's subsumption test so audit-side dispositions stay
/// derivable without a solver in scope.
fn is_sorted_subset(sub: &[TermId], sup: &[TermId]) -> bool {
    let mut i = 0;
    for &x in sup {
        if i == sub.len() {
            return true;
        }
        if sub[i] == x {
            i += 1;
        } else if sub[i] < x {
            return false;
        }
    }
    i == sub.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(s: &str) -> Fingerprint {
        Fingerprint::parse(s).expect("valid fingerprint")
    }

    #[test]
    fn reconcile_flags_pending_candidates() {
        let mut log = AuditLog::new();
        let id = log.begin_candidate(BugKind::UseAfterFree, Label(1), Label(2));
        assert!(log.reconcile().is_err());
        log.dispose(
            id,
            Disposition::Reported {
                fingerprint: fp("00000000000000aa"),
            },
        );
        let s = log.reconcile().expect("all disposed");
        assert_eq!(s.candidates, 1);
        assert_eq!(s.reported, 1);
    }

    #[test]
    fn unsat_disposal_memoizes_and_subsumes() {
        let mut pool = TermPool::new();
        let a = pool.bool_atom(0);
        let b = pool.bool_atom(1);
        let ab = pool.and(vec![a, b]);
        let mut log = AuditLog::new();
        // First refutation of {a}: a plain UnsatCore.
        let i0 = log.begin_candidate(BugKind::NullDeref, Label(1), Label(2));
        log.dispose_unsat(i0, &pool, a, false);
        assert!(matches!(
            log.records()[i0].disposition,
            Some(Disposition::UnsatCore {
                subsumed_by: None,
                ..
            })
        ));
        // Identical term again: memo.
        let i1 = log.begin_candidate(BugKind::NullDeref, Label(1), Label(3));
        log.dispose_unsat(i1, &pool, a, false);
        assert!(matches!(
            log.records()[i1].disposition,
            Some(Disposition::CacheMemo { origin }) if origin == i0
        ));
        // Superset conjunct set: subsumed by the first refutation.
        let i2 = log.begin_candidate(BugKind::NullDeref, Label(1), Label(4));
        log.dispose_unsat(i2, &pool, ab, false);
        assert!(matches!(
            log.records()[i2].disposition,
            Some(Disposition::UnsatCore {
                subsumed_by: Some(s),
                ..
            }) if s == i0
        ));
        // Prefiltered ff: construction fold, enters no map.
        let i3 = log.begin_candidate(BugKind::NullDeref, Label(1), Label(5));
        let ff = pool.ff();
        log.dispose_unsat(i3, &pool, ff, true);
        assert!(matches!(
            log.records()[i3].disposition,
            Some(Disposition::Prefiltered { unit_cycle: false })
        ));
        let s = log.reconcile().unwrap();
        assert_eq!(s.unsat, 2);
        assert_eq!(s.memoized, 1);
        assert_eq!(s.prefiltered, 1);
    }

    #[test]
    fn report_dedup_flips_to_deduped() {
        let mut log = AuditLog::new();
        let a = log.begin_candidate(BugKind::UseAfterFree, Label(1), Label(2));
        let b = log.begin_candidate(BugKind::UseAfterFree, Label(3), Label(4));
        log.dispose(
            a,
            Disposition::Reported {
                fingerprint: fp("00000000000000aa"),
            },
        );
        log.dispose(
            b,
            Disposition::Reported {
                fingerprint: fp("00000000000000aa"),
            },
        );
        let kept = std::collections::HashSet::from([(BugKind::UseAfterFree, Label(1), Label(2))]);
        log.apply_report_dedup(&kept);
        assert!(matches!(
            log.records()[b].disposition,
            Some(Disposition::Deduped { winner }) if winner == fp("00000000000000aa")
        ));
        let s = log.reconcile().unwrap();
        assert_eq!((s.reported, s.deduped), (1, 1));
    }

    #[test]
    fn jsonl_is_one_sorted_object_per_line() {
        let mut log = AuditLog::new();
        log.record_interference_prune(
            Label(6),
            Label(3),
            Some("o1".into()),
            Disposition::PrunedMhp {
                parallel: false,
                ordered_before: false,
            },
        );
        let id = log.begin_candidate(BugKind::UseAfterFree, Label(1), Label(2));
        log.dispose(
            id,
            Disposition::Reported {
                fingerprint: fp("00000000000000aa"),
            },
        );
        let jsonl = log.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        let first: serde_json::Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(first["layer"], "interference");
        assert_eq!(first["disposition"], "pruned_mhp");
        assert_eq!(first["certificate"]["parallel"], false);
        let second: serde_json::Value = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(second["disposition"], "reported");
        assert_eq!(second["certificate"]["fingerprint"], "00000000000000aa");
        // solver_core never reaches the canonical export.
        assert!(second.get("solver_core").is_none());
    }

    #[test]
    fn merge_dispatch_loads_sums_per_worker() {
        let mut log = AuditLog::new();
        log.merge_dispatch_loads(&[WorkerLoad {
            families: 2,
            stolen: 1,
        }]);
        log.merge_dispatch_loads(&[
            WorkerLoad {
                families: 3,
                stolen: 0,
            },
            WorkerLoad {
                families: 5,
                stolen: 4,
            },
        ]);
        assert_eq!(log.dispatch_loads.len(), 2);
        assert_eq!(log.dispatch_loads[0].families, 5);
        assert_eq!(log.dispatch_loads[0].stolen, 1);
        assert_eq!(log.dispatch_loads[1].families, 5);
    }
}
