//! Synchronization-semantics constraints — the §9 "future work"
//! extension: lock/unlock mutual exclusion and wait/notify ordering.
//!
//! The paper's framework is "generic enough to allow new synchronization
//! semantics to be plugged in easily" (§5.1); this module plugs two in:
//!
//! * **mutex regions** `lock(m) … unlock(m)`: two regions on aliasing
//!   mutexes in different threads exclude each other —
//!   `O_u1 < O_l2 ∨ O_u2 < O_l1`;
//! * **wait/notify**: a statement after `wait(cv)` requires some
//!   `notify(cv)` to have happened before the wait returns —
//!   `⋁_n O_n < O_w`.
//!
//! Constraints are only generated for regions/waits that contain or
//! precede events the query already mentions, keeping the lazy-encoding
//! discipline of §5.

use std::collections::BTreeSet;

use canary_dataflow::DataflowResult;
use canary_ir::{Inst, Label, ObjId, OrderGraph, Program, ThreadStructure, VarId};
use canary_smt::{TermId, TermPool};
use canary_vfg::NodeKind;

/// A lexical mutex region within one function.
#[derive(Clone, Debug)]
pub struct LockRegion {
    /// The `lock` statement.
    pub lock: Label,
    /// The matching `unlock` statement.
    pub unlock: Label,
    /// Objects the mutex pointer may reference (identity for aliasing).
    pub objs: Vec<ObjId>,
}

/// Indexed synchronization facts for a program.
#[derive(Clone, Debug, Default)]
pub struct SyncModel {
    /// All lock regions.
    pub regions: Vec<LockRegion>,
    /// `notify` sites with their condition-variable objects.
    pub notifies: Vec<(Label, Vec<ObjId>)>,
    /// `wait` sites with their condition-variable objects.
    pub waits: Vec<(Label, Vec<ObjId>)>,
}

impl SyncModel {
    /// Scans the program for lock regions and wait/notify sites.
    pub fn build(prog: &Program, og: &OrderGraph<'_>, df: &DataflowResult) -> Self {
        let objs_of = |v: VarId| -> Vec<ObjId> {
            df.def_site[v.index()]
                .and_then(|l| df.vfg.find(NodeKind::Def { var: v, label: l }))
                .map(|n| df.vfg.objects_reaching(n))
                .unwrap_or_default()
        };
        let mut locks: Vec<(Label, Vec<ObjId>)> = Vec::new();
        let mut unlocks: Vec<(Label, Vec<ObjId>)> = Vec::new();
        let mut notifies = Vec::new();
        let mut waits = Vec::new();
        for l in prog.labels() {
            match prog.inst(l) {
                Inst::Lock { mutex } => locks.push((l, objs_of(*mutex))),
                Inst::Unlock { mutex } => unlocks.push((l, objs_of(*mutex))),
                Inst::Notify { cv } => notifies.push((l, objs_of(*cv))),
                Inst::Wait { cv } => waits.push((l, objs_of(*cv))),
                _ => {}
            }
        }
        // Pair each lock with its nearest following unlock on an
        // aliasing mutex within the same function.
        let mut regions = Vec::new();
        for (ll, lobjs) in &locks {
            let mut best: Option<Label> = None;
            for (ul, uobjs) in &unlocks {
                if prog.func_of(*ll) != prog.func_of(*ul) {
                    continue;
                }
                if !aliasing(lobjs, uobjs) {
                    continue;
                }
                if og.happens_before(*ll, *ul)
                    && best.is_none_or(|b| og.happens_before(*ul, b))
                {
                    best = Some(*ul);
                }
            }
            if let Some(unlock) = best {
                regions.push(LockRegion {
                    lock: *ll,
                    unlock,
                    objs: lobjs.clone(),
                });
            }
        }
        SyncModel {
            regions,
            notifies,
            waits,
        }
    }

    /// Emits the synchronization constraints relevant to `events`,
    /// extending `events` with the lock/unlock/notify/wait labels used.
    pub fn constraints(
        &self,
        pool: &mut TermPool,
        prog: &Program,
        ts: &ThreadStructure,
        og: &OrderGraph<'_>,
        events: &mut BTreeSet<Label>,
    ) -> TermId {
        let mut parts: Vec<TermId> = Vec::new();
        // Relevant regions: those containing at least one query event.
        let evs: Vec<Label> = events.iter().copied().collect();
        let relevant: Vec<&LockRegion> = self
            .regions
            .iter()
            .filter(|r| {
                evs.iter().any(|&e| {
                    (e == r.lock || og.happens_before(r.lock, e))
                        && (e == r.unlock || og.happens_before(e, r.unlock))
                })
            })
            .collect();
        for (i, r1) in relevant.iter().enumerate() {
            for r2 in relevant.iter().skip(i + 1) {
                if !aliasing(&r1.objs, &r2.objs) {
                    continue;
                }
                if !ts.may_be_in_distinct_threads(prog, r1.lock, r2.lock) {
                    continue;
                }
                // Mutual exclusion of the two critical sections.
                let a = pool.order_lt(r1.unlock.0, r2.lock.0);
                let b = pool.order_lt(r2.unlock.0, r1.lock.0);
                parts.push(pool.or2(a, b));
                events.extend([r1.lock, r1.unlock, r2.lock, r2.unlock]);
            }
        }
        // Waits that precede a query event require a prior notify.
        for (wl, wobjs) in &self.waits {
            let gates = evs
                .iter()
                .any(|&e| e == *wl || og.happens_before(*wl, e));
            if !gates {
                continue;
            }
            let matching: Vec<Label> = self
                .notifies
                .iter()
                .filter(|(_, nobjs)| aliasing(wobjs, nobjs))
                .map(|(nl, _)| *nl)
                .collect();
            if matching.is_empty() {
                continue;
            }
            let disj: Vec<TermId> = matching
                .iter()
                .map(|&nl| pool.order_lt(nl.0, wl.0))
                .collect();
            parts.push(pool.or(disj));
            events.insert(*wl);
            events.extend(matching);
        }
        pool.and(parts)
    }
}

fn aliasing(a: &[ObjId], b: &[ObjId]) -> bool {
    a.iter().any(|x| b.contains(x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use canary_ir::{parse, CallGraph, MhpAnalysis};

    fn build(src: &str) -> (Program, SyncModel, TermPool, DataflowResult) {
        let prog = parse(src).unwrap();
        let cg = CallGraph::build(&prog);
        let mut pool = TermPool::new();
        let df = canary_dataflow::run(&prog, &cg, &mut pool);
        let og = OrderGraph::build(&prog, &cg);
        let model = SyncModel::build(&prog, &og, &df);
        (prog, model, pool, df)
    }

    #[test]
    fn lock_region_pairs_with_nearest_unlock() {
        let (_prog, model, _pool, _df) = build(
            "fn main() {
                m = alloc mu;
                lock m;
                p = alloc o;
                unlock m;
                lock m;
                use p;
                unlock m;
             }",
        );
        assert_eq!(model.regions.len(), 2);
        for r in &model.regions {
            assert!(r.lock < r.unlock);
        }
        // Nearest pairing: region 1 must not swallow region 2's unlock.
        assert!(model.regions[0].unlock < model.regions[1].lock);
    }

    #[test]
    fn cross_thread_regions_exclude_each_other() {
        let src = "fn main() {
                m = alloc mu;
                x = alloc cell;
                fork t w(m, x);
                lock m;
                c = *x;
                use c;
                unlock m;
             }
             fn w(mu2, y) {
                lock mu2;
                b = alloc o2;
                *y = b;
                unlock mu2;
             }";
        let prog = parse(src).unwrap();
        let cg = CallGraph::build(&prog);
        let ts = canary_ir::ThreadStructure::compute(&prog, &cg);
        let mhp = MhpAnalysis::new(&prog, &cg, &ts);
        let mut pool = TermPool::new();
        let df = canary_dataflow::run(&prog, &cg, &mut pool);
        let model = SyncModel::build(&prog, mhp.order_graph(), &df);
        assert_eq!(model.regions.len(), 2);
        let mut events: BTreeSet<Label> = [prog.deref_sites()[0]].into_iter().collect();
        // Include an event inside the second region too.
        let store = prog
            .labels()
            .find(|&l| matches!(prog.inst(l), Inst::Store { .. }))
            .unwrap();
        events.insert(store);
        let c = model.constraints(&mut pool, &prog, &ts, mhp.order_graph(), &mut events);
        assert_ne!(c, pool.tt(), "mutex exclusion constraint expected");
        // Both regions' lock/unlock labels now ground the event set.
        assert!(events.len() >= 5);
    }

    #[test]
    fn wait_requires_notify_before() {
        let src = "fn main() {
                cv = alloc c;
                fork t w(cv);
                notify cv;
             }
             fn w(cv2) {
                wait cv2;
                p = alloc o;
                use p;
             }";
        let prog = parse(src).unwrap();
        let cg = CallGraph::build(&prog);
        let ts = canary_ir::ThreadStructure::compute(&prog, &cg);
        let mhp = MhpAnalysis::new(&prog, &cg, &ts);
        let mut pool = TermPool::new();
        let df = canary_dataflow::run(&prog, &cg, &mut pool);
        let model = SyncModel::build(&prog, mhp.order_graph(), &df);
        assert_eq!(model.waits.len(), 1);
        assert_eq!(model.notifies.len(), 1);
        let mut events: BTreeSet<Label> = [prog.deref_sites()[0]].into_iter().collect();
        let c = model.constraints(&mut pool, &prog, &ts, mhp.order_graph(), &mut events);
        assert_ne!(c, pool.tt(), "wait ordering constraint expected");
    }

    #[test]
    fn irrelevant_events_get_no_constraints() {
        let (prog, model, mut pool, _df) = build(
            "fn main() {
                m = alloc mu;
                p = alloc o;
                use p;
                lock m;
                unlock m;
             }",
        );
        let cg = CallGraph::build(&prog);
        let ts = canary_ir::ThreadStructure::compute(&prog, &cg);
        let og = OrderGraph::build(&prog, &cg);
        // The deref is *before* the region, so no region contains it.
        let mut events: BTreeSet<Label> = [prog.deref_sites()[0]].into_iter().collect();
        let c = model.constraints(&mut pool, &prog, &ts, &og, &mut events);
        assert_eq!(c, pool.tt());
    }
}
