//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **MHP pruning** on/off in Alg. 2 (§6 "Performance");
//! * **semi-decision prefilter** on/off (§5.2 optimization 1);
//! * **parallel query solving** 1/2/4 workers (§5.2 optimization 2);
//! * **lazy vs eager guard solving** — the paper's "judiciously
//!   delaying the disjunctive reasoning": eager mode solves every VFG
//!   edge guard at construction time, lazy mode (Canary's) only solves
//!   aggregated path constraints.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use canary_core::{Canary, CanaryConfig};
use canary_detect::{BugKind, DetectOptions};
use canary_interference::InterferenceOptions;
use canary_smt::{check, SolverOptions, SolverStats, SolverStrategy};
use canary_workloads::{generate, Workload, WorkloadSpec};

fn workload(stmts: usize) -> Workload {
    generate(&WorkloadSpec {
        target_stmts: stmts,
        ..WorkloadSpec::small(0xAB1A)
    })
}

fn uaf_config(mhp: bool, prefilter: bool, threads: usize) -> CanaryConfig {
    CanaryConfig {
        checkers: vec![BugKind::UseAfterFree],
        interference: InterferenceOptions {
            use_mhp: mhp,
            ..InterferenceOptions::default()
        },
        detect: DetectOptions {
            inter_thread_only: true,
            solver: SolverOptions {
                prefilter,
                num_threads: threads,
                ..SolverOptions::default()
            },
            ..DetectOptions::default()
        },
        ..CanaryConfig::default()
    }
}

fn bench_mhp(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_mhp");
    g.sample_size(10);
    let w = workload(1200);
    for (label, mhp) in [("with_mhp", true), ("without_mhp", false)] {
        g.bench_with_input(BenchmarkId::new(label, 1200), &w, |b, w| {
            let canary = Canary::with_config(uaf_config(mhp, true, 1));
            b.iter(|| canary.analyze(&w.prog));
        });
    }
    g.finish();
}

fn bench_prefilter(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_prefilter");
    g.sample_size(10);
    let w = workload(1200);
    for (label, pf) in [("with_prefilter", true), ("without_prefilter", false)] {
        g.bench_with_input(BenchmarkId::new(label, 1200), &w, |b, w| {
            let canary = Canary::with_config(uaf_config(true, pf, 1));
            b.iter(|| canary.analyze(&w.prog));
        });
    }
    g.finish();
}

fn bench_parallel(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_parallel");
    g.sample_size(10);
    let w = workload(2400);
    for threads in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("solver_threads", threads), &w, |b, w| {
            let canary = Canary::with_config(uaf_config(true, true, threads));
            b.iter(|| canary.analyze(&w.prog));
        });
    }
    g.finish();
}

fn bench_lazy_vs_eager(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_lazy_solving");
    g.sample_size(10);
    let w = workload(1200);
    // Lazy (Canary): aggregate guards, solve per source-sink path only.
    g.bench_with_input(BenchmarkId::new("lazy", 1200), &w, |b, w| {
        let canary = Canary::with_config(uaf_config(true, true, 1));
        b.iter(|| canary.analyze(&w.prog));
    });
    // Eager: additionally decide every single edge guard with the full
    // solver at construction time (what Canary's delayed disjunctive
    // reasoning avoids).
    g.bench_with_input(BenchmarkId::new("eager", 1200), &w, |b, w| {
        let canary = Canary::with_config(uaf_config(true, true, 1));
        b.iter(|| {
            let (pool, df, _ir, _cg, _ts, _m) = canary.build_vfg(&w.prog);
            let stats = SolverStats::default();
            let opts = SolverOptions::default();
            let mut sat_edges = 0usize;
            for e in df.vfg.edges() {
                if check(&pool, e.guard, &opts, &stats).is_sat() {
                    sat_edges += 1;
                }
            }
            sat_edges
        });
    });
    g.finish();
}

fn bench_solver_reuse(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_solver_reuse");
    g.sample_size(10);
    // A query-family-heavy subject: many guarded value-flow paths per
    // source, all refuted through the same lock/handshake disjunctions
    // — the shape where the incremental back-end's shared-prefix
    // solving and UNSAT-core subsumption pay off.
    let prog = canary_bench::family_subject(4, 10, 6);
    for (label, strategy) in [
        ("fresh", SolverStrategy::Fresh),
        ("incremental", SolverStrategy::Incremental),
    ] {
        g.bench_with_input(BenchmarkId::new(label, 40), &prog, |b, prog| {
            let mut cfg = uaf_config(true, true, 1);
            cfg.detect.solver.strategy = strategy;
            let canary = Canary::with_config(cfg);
            b.iter(|| canary.analyze(prog));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_mhp,
    bench_prefilter,
    bench_parallel,
    bench_lazy_vs_eager,
    bench_solver_reuse
);
criterion_main!(benches);
