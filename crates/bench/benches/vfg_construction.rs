//! Criterion bench behind Fig. 7: guarded VFG construction (Canary,
//! Alg. 1 + Alg. 2) versus the exhaustive baselines, per subject size.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use canary_bench::{measure_canary_vfg, measure_fsam_vfg, measure_saber_vfg};
use canary_workloads::{generate, WorkloadSpec};

fn spec(stmts: usize) -> WorkloadSpec {
    WorkloadSpec {
        target_stmts: stmts,
        ..WorkloadSpec::small(0xF167)
    }
}

fn bench_vfg(c: &mut Criterion) {
    let mut g = c.benchmark_group("vfg_construction");
    g.sample_size(10);
    for &stmts in &[300usize, 1200, 4800] {
        let w = generate(&spec(stmts));
        g.bench_with_input(BenchmarkId::new("canary", stmts), &w, |b, w| {
            b.iter(|| measure_canary_vfg(w));
        });
        g.bench_with_input(BenchmarkId::new("saber", stmts), &w, |b, w| {
            b.iter(|| measure_saber_vfg(w, Duration::from_secs(120)));
        });
        // Fsam only on the sizes it can finish repeatedly.
        if stmts <= 1200 {
            g.bench_with_input(BenchmarkId::new("fsam", stmts), &w, |b, w| {
                b.iter(|| measure_fsam_vfg(w, Duration::from_secs(120)));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_vfg);
criterion_main!(benches);
