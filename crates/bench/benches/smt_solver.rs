//! Criterion bench for the CDCL(T) substrate: the constraint families
//! Canary actually emits — guard conjunctions with complementary branch
//! atoms, load-store order chains, and no-overwrite disjunctions
//! (Eq. 2) — at growing sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use canary_smt::{check, SolverOptions, SolverStats, TermId, TermPool};

/// Φ_ls-shaped formula: one store→load order plus `n` competing stores
/// that must each land outside the window.
fn ls_formula(pool: &mut TermPool, n: u32) -> TermId {
    let store = 0u32;
    let load = 1u32;
    let mut parts = vec![pool.order_lt(store, load)];
    for i in 0..n {
        let s2 = 2 + i;
        let before = pool.order_lt(s2, store);
        let after = pool.order_lt(load, s2);
        parts.push(pool.or2(before, after));
    }
    // Program order pins every competing store between the two — the
    // conjunction is unsatisfiable, exercising the theory conflicts.
    for i in 0..n {
        let s2 = 2 + i;
        parts.push(pool.order_lt(store, s2));
        parts.push(pool.order_lt(s2, load));
    }
    pool.and(parts)
}

/// Guard-aggregation-shaped formula: a conjunction of `n` branch atoms
/// with one complementary pair hidden inside a disjunction.
fn guard_formula(pool: &mut TermPool, n: u32) -> TermId {
    let mut parts: Vec<TermId> = (0..n).map(|i| pool.bool_atom(i)).collect();
    let a = pool.bool_atom(0);
    let na = pool.not(a);
    let b = pool.bool_atom(n + 1);
    let left = pool.and2(na, b);
    let nb = pool.not(b);
    let right = pool.and2(na, nb);
    parts.push(pool.or2(left, right));
    pool.and(parts)
}

fn bench_smt(c: &mut Criterion) {
    let mut g = c.benchmark_group("smt_solver");
    for &n in &[8u32, 32, 128] {
        g.bench_with_input(BenchmarkId::new("load_store_unsat", n), &n, |b, &n| {
            b.iter(|| {
                let mut pool = TermPool::new();
                let f = ls_formula(&mut pool, n);
                let stats = SolverStats::default();
                check(&pool, f, &SolverOptions::default(), &stats)
            });
        });
        g.bench_with_input(BenchmarkId::new("guard_conjunction", n), &n, |b, &n| {
            b.iter(|| {
                let mut pool = TermPool::new();
                let f = guard_formula(&mut pool, n);
                let stats = SolverStats::default();
                check(&pool, f, &SolverOptions::default(), &stats)
            });
        });
        g.bench_with_input(
            BenchmarkId::new("load_store_no_prefilter", n),
            &n,
            |b, &n| {
                b.iter(|| {
                    let mut pool = TermPool::new();
                    let f = ls_formula(&mut pool, n);
                    let stats = SolverStats::default();
                    let opts = SolverOptions {
                        prefilter: false,
                        ..SolverOptions::default()
                    };
                    check(&pool, f, &opts, &stats)
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_smt);
criterion_main!(benches);
