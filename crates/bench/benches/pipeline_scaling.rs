//! Criterion bench behind Fig. 8: Canary's full bug-hunting pipeline
//! (VFG construction + inter-thread UAF checking) across program sizes,
//! whose near-linear growth is the paper's scalability claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use canary_bench::run_canary_uaf;
use canary_workloads::{generate, WorkloadSpec};

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline_scaling");
    g.sample_size(10);
    for &stmts in &[300usize, 600, 1200, 2400, 4800] {
        let spec = WorkloadSpec {
            target_stmts: stmts,
            ..WorkloadSpec::small(0xF168)
        };
        let w = generate(&spec);
        g.throughput(Throughput::Elements(w.prog.stmt_count() as u64));
        g.bench_with_input(BenchmarkId::new("canary_uaf", stmts), &w, |b, w| {
            b.iter(|| run_canary_uaf(w));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
