//! Criterion bench behind Fig. 8: Canary's full bug-hunting pipeline
//! (VFG construction + inter-thread UAF checking) across program sizes,
//! whose near-linear growth is the paper's scalability claim — plus the
//! worker-thread sweep for the parallel front-end (level-parallel
//! Alg. 1 tasks and sharded Alg. 2 rounds).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use canary_bench::{measure_front_end, run_canary_uaf};
use canary_workloads::{generate, WorkloadSpec};

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline_scaling");
    g.sample_size(10);
    for &stmts in &[300usize, 600, 1200, 2400, 4800] {
        let spec = WorkloadSpec {
            target_stmts: stmts,
            ..WorkloadSpec::small(0xF168)
        };
        let w = generate(&spec);
        g.throughput(Throughput::Elements(w.prog.stmt_count() as u64));
        g.bench_with_input(BenchmarkId::new("canary_uaf", stmts), &w, |b, w| {
            b.iter(|| run_canary_uaf(w));
        });
    }
    g.finish();
}

/// Dataflow + interference wall time at 1, 2 and 4 workers on the
/// largest Fig. 8 subject. Deterministic output means the sweep is an
/// apples-to-apples wall-time comparison: every run builds the same
/// pool, VFG and facts byte-for-byte.
fn bench_thread_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("front_end_thread_scaling");
    g.sample_size(10);
    let spec = WorkloadSpec {
        target_stmts: 4800,
        ..WorkloadSpec::small(0xF168)
    };
    let w = generate(&spec);
    for &threads in &[1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("vfg_front_end", threads), &w, |b, w| {
            b.iter(|| measure_front_end(w, threads));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pipeline, bench_thread_scaling);
criterion_main!(benches);

/// Smoke check on the sweep itself (the runnable copy lives in
/// `tests/scaling_smoke.rs`; `harness = false` keeps this one out of
/// `cargo test`): at 4 workers the front-end must not regress past
/// 1.5× the serial wall time on the largest subject.
#[test]
fn four_workers_do_not_regress_front_end() {
    canary_bench::assert_thread_scaling_sane();
}
