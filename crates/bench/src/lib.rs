//! # canary-bench
//!
//! Shared harness utilities for regenerating the paper's evaluation
//! artifacts (Fig. 7, Fig. 8, Tbl. 1): timed tool drivers over the
//! synthetic suite, least-squares fitting for the Fig. 8 scalability
//! curves, and plain-text table rendering.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod diff;

use std::time::{Duration, Instant};

use canary_baselines::{fsam, saber, Budgeted, Deadline};
use canary_core::{Canary, CanaryConfig};
use canary_detect::{BugKind, DetectOptions};
use canary_ir::Label;
use canary_workloads::{evaluate, Eval, Workload};

/// One tool's measurement on one subject.
#[derive(Clone, Copy, Debug)]
pub enum Measurement {
    /// Completed: wall time and approximate peak bytes.
    Done {
        /// Wall-clock time.
        time: Duration,
        /// Approximate resident bytes of the analysis structures.
        bytes: usize,
    },
    /// Exceeded the budget (an `NA` cell).
    TimedOut,
}

impl Measurement {
    /// Renders seconds or `NA`.
    pub fn time_cell(&self) -> String {
        match self {
            Measurement::Done { time, .. } => format!("{:.2}", time.as_secs_f64()),
            Measurement::TimedOut => "NA".into(),
        }
    }

    /// Renders mebibytes or `NA`.
    pub fn mem_cell(&self) -> String {
        match self {
            Measurement::Done { bytes, .. } => {
                format!("{:.2}", *bytes as f64 / (1024.0 * 1024.0))
            }
            Measurement::TimedOut => "NA".into(),
        }
    }

    /// The time when finished.
    pub fn time(&self) -> Option<Duration> {
        match self {
            Measurement::Done { time, .. } => Some(*time),
            Measurement::TimedOut => None,
        }
    }
}

/// Canary's VFG construction (Alg. 1 + Alg. 2), timed.
pub fn measure_canary_vfg(w: &Workload) -> Measurement {
    let canary = Canary::new();
    let t0 = Instant::now();
    let (pool, _df, _ir, _cg, _ts, metrics) = canary.build_vfg(&w.prog);
    let time = t0.elapsed();
    // Guards live in the term pool; count them into the footprint.
    let bytes = metrics.vfg_bytes + pool.len() * 48;
    Measurement::Done { time, bytes }
}

/// Saber's VFG construction under a budget.
pub fn measure_saber_vfg(w: &Workload, budget: Duration) -> Measurement {
    let t0 = Instant::now();
    match saber::build_vfg(&w.prog, Deadline::after(budget)) {
        Budgeted::Done(r) => Measurement::Done {
            time: t0.elapsed(),
            bytes: r.pts.bytes + r.vfg.approx_bytes(),
        },
        Budgeted::TimedOut => Measurement::TimedOut,
    }
}

/// Fsam's VFG construction under a budget.
pub fn measure_fsam_vfg(w: &Workload, budget: Duration) -> Measurement {
    let t0 = Instant::now();
    match fsam::solve(&w.prog, Deadline::after(budget)) {
        Budgeted::Done(r) => Measurement::Done {
            time: t0.elapsed(),
            bytes: r.pts.bytes + r.state_bytes + r.vfg.approx_bytes(),
        },
        Budgeted::TimedOut => Measurement::TimedOut,
    }
}

/// The inter-thread-UAF configuration used throughout §7.2.
pub fn uaf_config() -> CanaryConfig {
    CanaryConfig {
        checkers: vec![BugKind::UseAfterFree],
        detect: DetectOptions {
            inter_thread_only: true,
            ..DetectOptions::default()
        },
        ..CanaryConfig::default()
    }
}

/// The VFG front-end (Alg. 1 + Alg. 2) at an explicit worker count,
/// returning the per-phase metrics — the raw material for the thread
/// scaling chart. Output is byte-identical across `threads`; only the
/// phase wall times move.
pub fn measure_front_end(w: &Workload, threads: usize) -> canary_core::Metrics {
    let canary = Canary::with_config(CanaryConfig {
        threads,
        ..uaf_config()
    });
    let (_pool, _df, _ir, _cg, _ts, metrics) = canary.build_vfg(&w.prog);
    metrics
}

/// Canary's full pipeline on one subject: (time, bytes, eval).
pub fn run_canary_uaf(w: &Workload) -> (Duration, usize, Eval) {
    let (time, bytes, eval, _metrics) = run_canary_uaf_profiled(w);
    (time, bytes, eval)
}

/// [`run_canary_uaf`] keeping the full per-run [`canary_core::Metrics`]
/// — including the per-function and per-query attribution profiles —
/// for the Fig. 7/8 drill-down tables.
pub fn run_canary_uaf_profiled(w: &Workload) -> (Duration, usize, Eval, canary_core::Metrics) {
    let canary = Canary::with_config(uaf_config());
    let t0 = Instant::now();
    let outcome = canary.analyze(&w.prog);
    let time = t0.elapsed();
    let pairs: Vec<(Label, Label)> =
        outcome.reports.iter().map(|r| (r.source, r.sink)).collect();
    let eval = evaluate(&w.truth, &pairs);
    let bytes = outcome.metrics.vfg_bytes + outcome.metrics.term_count * 48;
    (time, bytes, eval, outcome.metrics)
}

/// Per-phase wall/task breakdown rows for [`render_table`] — the
/// "where does the time go" companion to Fig. 7a/8. Columns: phase,
/// wall(ms), tasks, share(%).
pub fn phase_breakdown(m: &canary_core::Metrics) -> Vec<Vec<String>> {
    let total = m.t_total().as_secs_f64().max(1e-9);
    let row = |name: &str, wall: Duration, tasks: String| {
        vec![
            name.to_string(),
            format!("{:.2}", wall.as_secs_f64() * 1e3),
            tasks,
            format!("{:.1}", 100.0 * wall.as_secs_f64() / total),
        ]
    };
    vec![
        row(
            "alg1 dataflow",
            m.t_dataflow,
            format!("{}", m.dataflow_phase.tasks),
        ),
        row(
            "alg2 interference",
            m.t_interference,
            format!("{}", m.interference_phase.tasks),
        ),
        row("detect+smt", m.t_detect, format!("{}", m.detect.queries)),
    ]
}

/// Renders the hottest-functions / hottest-queries attribution tables
/// from a run's profiles (empty string when no profiles were
/// collected). The ranking is deterministic — see
/// [`canary_core::Metrics::hottest_queries`].
pub fn attribution_report(m: &canary_core::Metrics, k: usize) -> String {
    let mut out = String::new();
    let funcs = m.hottest_functions(k);
    if !funcs.is_empty() {
        let rows: Vec<Vec<String>> = funcs
            .iter()
            .map(|p| {
                vec![
                    p.name.clone(),
                    format!("{}", p.stmt_visits),
                    format!("{}", p.summary_cells),
                    format!("{}", p.stores + p.loads),
                    format!("{:.2}", p.wall.as_secs_f64() * 1e3),
                ]
            })
            .collect();
        out.push_str("hottest functions (Alg. 1):\n");
        out.push_str(&render_table(
            &["function", "stmt-visits", "summary-cells", "mem-sites", "wall(ms)"],
            &rows,
        ));
    }
    let queries = m.hottest_queries(k);
    if !queries.is_empty() {
        let rows: Vec<Vec<String>> = queries
            .iter()
            .map(|p| {
                vec![
                    format!("{}", p.kind),
                    format!("{}->{}", p.source.0, p.sink.0),
                    format!("{}", p.path_len),
                    format!("{}", p.bool_atoms + p.order_atoms),
                    format!("{}", p.decisions),
                    format!("{}", p.conflicts),
                    if p.prefiltered {
                        "prefilter".into()
                    } else if p.sat {
                        "sat".into()
                    } else {
                        "unsat".into()
                    },
                    format!("{:.2}", p.wall.as_secs_f64() * 1e3),
                ]
            })
            .collect();
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str("hottest SMT queries (§5):\n");
        out.push_str(&render_table(
            &["kind", "src->sink", "path", "atoms", "decisions", "conflicts", "result", "wall(ms)"],
            &rows,
        ));
    }
    out
}

/// A baseline's full UAF run: `None` on timeout.
pub fn run_baseline_uaf(
    w: &Workload,
    budget: Duration,
    tool: BaselineTool,
) -> Option<(usize, Eval)> {
    let deadline = Deadline::after(budget);
    let reports = match tool {
        BaselineTool::Saber => saber::check_uaf(&w.prog, deadline),
        BaselineTool::Fsam => fsam::check_uaf(&w.prog, deadline),
    };
    match reports {
        Budgeted::Done(rs) => {
            let pairs: Vec<(Label, Label)> = rs.iter().map(|r| (r.source, r.sink)).collect();
            Some((pairs.len(), evaluate(&w.truth, &pairs)))
        }
        Budgeted::TimedOut => None,
    }
}

/// The scaling smoke property behind `benches/pipeline_scaling.rs` and
/// `tests/scaling_smoke.rs`: on the largest Fig. 8 subject, the
/// dataflow + interference front-end at 4 workers must finish within
/// 1.5× the serial wall time (parallelism may help or break even, but
/// must not wreck the serial path). On a single-core host the wall-time
/// comparison is meaningless — four workers time-slice one CPU — so the
/// sweep still runs (exercising the parallel machinery) but the ratio
/// is only reported, not asserted.
///
/// # Panics
///
/// Panics when the host has ≥ 2 CPUs and the 4-worker front-end
/// exceeds 1.5× the serial time.
pub fn assert_thread_scaling_sane() {
    use canary_workloads::{generate, WorkloadSpec};
    let spec = WorkloadSpec {
        target_stmts: 4800,
        ..WorkloadSpec::small(0xF168)
    };
    let w = generate(&spec);
    // Best-of-3 per configuration damps scheduler noise.
    let best = |threads: usize| {
        (0..3)
            .map(|_| measure_front_end(&w, threads).t_vfg())
            .min()
            .expect("three samples")
    };
    let serial = best(1);
    let par = best(4);
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if cores < 2 {
        eprintln!(
            "single-core host: front-end serial {serial:?} vs 4-worker {par:?} (not asserted)"
        );
        return;
    }
    assert!(
        par.as_secs_f64() <= serial.as_secs_f64() * 1.5,
        "front-end at 4 workers took {par:?}, serial took {serial:?} (> 1.5x)"
    );
}

/// Which baseline to drive.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BaselineTool {
    /// Flow-insensitive exhaustive (ISSTA 2012).
    Saber,
    /// Flow-sensitive multithreaded (CGO 2016).
    Fsam,
}

/// Least-squares linear fit `y ≈ a·x + b` with the coefficient of
/// determination R² — the Fig. 8 statistic.
#[derive(Clone, Copy, Debug)]
pub struct LinearFit {
    /// Slope.
    pub a: f64,
    /// Intercept.
    pub b: f64,
    /// Coefficient of determination.
    pub r2: f64,
}

/// Fits `y ≈ a·x + b`.
///
/// # Panics
///
/// Panics if fewer than two points are supplied.
pub fn linear_fit(points: &[(f64, f64)]) -> LinearFit {
    assert!(points.len() >= 2, "need at least two points to fit");
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    let a = if denom.abs() < f64::EPSILON {
        0.0
    } else {
        (n * sxy - sx * sy) / denom
    };
    let b = (sy - a * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = points.iter().map(|p| (p.1 - (a * p.0 + b)).powi(2)).sum();
    let r2 = if ss_tot.abs() < f64::EPSILON {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    LinearFit { a, b, r2 }
}

/// Renders an aligned plain-text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let hdr: Vec<String> = headers.iter().map(|s| (*s).to_string()).collect();
    out.push_str(&fmt_row(&hdr, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// A query-family-heavy subject for the incremental-solver benchmarks:
/// per source, `stores` *guarded* stores publish a pointer into one
/// cell (one value-flow path — and so one query-family member — each),
/// the free and the use sit inside `locks` nested critical sections
/// (mutual-exclusion disjunctions shared by every member), and a
/// two-notify handshake makes the whole family unsatisfiable *through
/// the disjunctions* — invisible to the unit-cycle prefilter, so every
/// member needs real CDCL(T) search.
///
/// Under the fresh strategy each member replays that search from
/// scratch; the incremental back-end refutes the shared prefix once
/// and discharges the rest of the family by UNSAT-core subsumption.
/// This is the shape the paper's query clustering targets: many
/// candidate paths per source whose refutation has one common reason.
pub fn family_subject(sources: usize, stores: usize, locks: usize) -> canary_ir::Program {
    use std::fmt::Write as _;
    let mut s = String::from("fn main() {\n");
    for i in 0..sources {
        let _ = writeln!(s, "  c{i} = alloc d{i};\n  p{i} = alloc o{i};");
        for r in 0..locks {
            let _ = writeln!(s, "  m{i}x{r} = alloc mu{i}x{r};");
        }
        for k in 0..stores {
            let _ = writeln!(s, "  if (g{i}x{k}) {{ *c{i} = p{i}; }}");
        }
        let mlist: String = (0..locks).map(|r| format!(", m{i}x{r}")).collect();
        let _ = writeln!(s, "  cv{i} = alloc v{i};");
        let _ = writeln!(s, "  fork t{i} w{i}(c{i}, cv{i}{mlist});");
        let _ = writeln!(s, "  wait cv{i};");
        for r in 0..locks {
            let _ = writeln!(s, "  lock m{i}x{r};");
        }
        let _ = writeln!(s, "  free p{i};");
        for r in (0..locks).rev() {
            let _ = writeln!(s, "  unlock m{i}x{r};");
        }
    }
    s.push_str("}\n");
    for i in 0..sources {
        let llist: String = (0..locks).map(|r| format!(", l{r}")).collect();
        let _ = writeln!(s, "fn w{i}(a, cv{llist}) {{");
        s.push_str("  x = *a;\n");
        for r in 0..locks {
            let _ = writeln!(s, "  lock l{r};");
        }
        s.push_str("  use x;\n");
        for r in (0..locks).rev() {
            let _ = writeln!(s, "  unlock l{r};");
        }
        s.push_str("  notify cv;\n  notify cv;\n}\n");
    }
    let prog = canary_ir::parse(&s).expect("family subject parses");
    prog.validate().expect("family subject validates");
    prog
}

/// The fixed BENCH_4 corpus: the shipped `.cir` examples plus
/// deterministic generated workloads plus the two query-family
/// subjects. `scale` multiplies generated-subject sizes (the
/// `CANARY_BENCH_STMTS` knob). Shared by `bench4` (strategy
/// comparison) and `bench8` (telemetry overhead) so their numbers are
/// about the same programs.
///
/// # Panics
///
/// Panics when a shipped example is missing or fails to parse — the
/// corpus is part of the repository.
pub fn bench_corpus(scale: f64) -> Vec<(String, canary_ir::Program)> {
    use canary_workloads::{generate, WorkloadSpec};
    let stmts = |n: usize| ((n as f64 * scale) as usize).max(50);
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut subjects: Vec<(String, canary_ir::Program)> = Vec::new();
    for example in ["fig2.cir", "fig2_variant.cir"] {
        let src = std::fs::read_to_string(root.join("examples").join(example))
            .unwrap_or_else(|e| panic!("read {example}: {e}"));
        let prog = canary_ir::parse(&src).expect("example parses");
        prog.validate().expect("example validates");
        subjects.push((example.into(), prog));
    }
    // The generated subjects carry enough seeded SMT work (hard
    // families included) that per-subject detect wall clears the
    // `canary bench diff` 1ms noise floor by an order of magnitude —
    // sub-floor subjects turn the time gate into a coin flip. The
    // shipped examples stay tiny on purpose; the floor skips them.
    let specs = vec![
        WorkloadSpec {
            target_stmts: stmts(1800),
            contradiction_patterns: 4,
            family_fanout: 6,
            hard_family_ratio: 0.5,
            ..WorkloadSpec::small(0xB41)
        },
        WorkloadSpec {
            name: "dense-guards".into(),
            seed: 0xB42,
            target_stmts: stmts(1600),
            threads: 3,
            shared_cells: 6,
            true_bugs: 4,
            benign_patterns: 4,
            contradiction_patterns: 4,
            handshake_patterns: 2,
            order_fp_patterns: 3,
            double_free: 2,
            null_deref: 2,
            leak: 2,
            double_lock: 1,
            conflict_lock: 1,
            sb_patterns: 0,
            mp_patterns: 0,
            lb_patterns: 0,
            family_fanout: 6,
            hard_family_ratio: 0.25,
            filler: true,
        },
        WorkloadSpec {
            name: "dense-cells".into(),
            seed: 0xB43,
            target_stmts: stmts(2400),
            threads: 4,
            shared_cells: 8,
            true_bugs: 5,
            benign_patterns: 3,
            contradiction_patterns: 5,
            handshake_patterns: 2,
            order_fp_patterns: 4,
            double_free: 3,
            null_deref: 2,
            leak: 1,
            double_lock: 1,
            conflict_lock: 2,
            sb_patterns: 0,
            mp_patterns: 0,
            lb_patterns: 0,
            family_fanout: 6,
            hard_family_ratio: 0.4,
            filler: true,
        },
    ];
    for spec in &specs {
        let w = generate(spec);
        subjects.push((spec.name.clone(), w.prog));
    }
    // Query-family subjects: many candidate paths per source sharing
    // one refutation reason, routed through lock/handshake
    // disjunctions so the prefilter cannot discharge them.
    let fam = |n: usize| ((n as f64 * scale) as usize).max(2);
    subjects.push(("family-guarded".into(), family_subject(4, fam(10), 6)));
    subjects.push(("family-wide".into(), family_subject(6, fam(16), 4)));
    subjects
}

/// The BENCH_5 saturation corpus: a Fig. 7-style size sweep of
/// generated subjects whose SMT work is dominated by query families —
/// fan-out readers per contradiction pattern — with the leading half
/// *hardened* (`hard_family_ratio`): their refutation lives in the
/// wait/notify order theory, so every member costs real CDCL(T)
/// search. Hard families sit first in family order, which is exactly
/// the adversarial layout for the static dispatcher's contiguous
/// chunking: early chunks drown in hard families while late chunks
/// idle. `scale` multiplies subject sizes (`CANARY_BENCH_STMTS`).
pub fn saturation_corpus(scale: f64) -> Vec<(String, Workload)> {
    use canary_workloads::{generate, WorkloadSpec};
    let stmts = |n: usize| ((n as f64 * scale) as usize).max(50);
    let points = [
        ("sat-2k", 2000, 8, 5),
        ("sat-5k", 5000, 12, 6),
        ("sat-9k", 9000, 16, 6),
    ];
    points
        .iter()
        .map(|&(name, size, families, fanout)| {
            let spec = WorkloadSpec {
                name: name.into(),
                seed: 0xB50 + size as u64,
                target_stmts: stmts(size),
                threads: 3,
                shared_cells: 6,
                true_bugs: 2,
                benign_patterns: 2,
                contradiction_patterns: families,
                handshake_patterns: 1,
                order_fp_patterns: 2,
                double_free: 1,
                null_deref: 1,
                leak: 1,
                double_lock: 0,
                conflict_lock: 0,
                sb_patterns: 0,
                mp_patterns: 0,
                lb_patterns: 0,
                family_fanout: fanout,
                hard_family_ratio: 0.5,
                filler: true,
            };
            (name.to_string(), generate(&spec))
        })
        .collect()
}

/// Canonical rendering of everything a solver/scheduler configuration
/// must not change — reports with paths, plus per-query verdicts —
/// compared byte-for-byte between strategies, dispatchers, shard
/// counts and cube settings.
pub fn report_fingerprint(outcome: &canary_core::AnalysisOutcome) -> String {
    let mut s = String::new();
    for r in &outcome.reports {
        s.push_str(&format!(
            "{} {}->{} inter={} path={:?}\n",
            r.kind, r.source.0, r.sink.0, r.inter_thread, r.path
        ));
    }
    for p in &outcome.metrics.query_profiles {
        s.push_str(&format!(
            "q {} {}->{} sat={} pre={}\n",
            p.kind, p.source.0, p.sink.0, p.sat, p.prefiltered
        ));
    }
    s
}

/// Deterministic per-family solver work from a run's query profiles:
/// decisions + conflicts + 1 per member (the unit term keeps
/// prefilter-folded members from vanishing — encoding them still costs
/// something), summed per family, in ascending family-key order. This
/// is the input to the makespan model below: on a single-core host
/// wall-clock "speedup at 4 threads" is meaningless (four workers
/// time-slice one CPU), so BENCH_5 gates the *schedule* the
/// dispatchers provably produce over this deterministic work vector.
pub fn family_work(m: &canary_core::Metrics) -> Vec<u64> {
    let mut per: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for p in &m.query_profiles {
        *per.entry(p.family).or_insert(0) += p.decisions + p.conflicts + 1;
    }
    per.into_values().collect()
}

/// Makespan of the static dispatcher's contiguous chunking: family
/// `i` of `n` goes to worker `w` iff `i ∈ [w·n/T, (w+1)·n/T)` — the
/// exact split `Dispatch::Static` uses — and the makespan is the
/// heaviest chunk.
pub fn static_makespan(work: &[u64], workers: usize) -> u64 {
    let (n, t) = (work.len(), workers.max(1));
    (0..t)
        .map(|w| work[w * n / t..(w + 1) * n / t].iter().sum())
        .max()
        .unwrap_or(0)
}

/// Makespan of deterministic greedy list scheduling — the
/// work-stealing dispatcher's idealization: families are claimed in
/// family order by whichever worker is free first (least-loaded,
/// lowest index on ties), which is what stealing converges to when
/// whole families are the unit of theft.
pub fn worksteal_makespan(work: &[u64], workers: usize) -> u64 {
    let mut loads = vec![0u64; workers.max(1)];
    for &w in work {
        let min = (0..loads.len())
            .min_by_key(|&i| (loads[i], i))
            .expect("at least one worker");
        loads[min] += w;
    }
    loads.into_iter().max().unwrap_or(0)
}

/// Reads a scaling knob from the environment with a default, so the
/// figure binaries adapt to slow machines:
/// `CANARY_BENCH_STMTS_PER_KLOC`, `CANARY_BENCH_TIMEOUT_SECS`.
pub fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_fit_recovers_exact_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (f64::from(i), 3.0 * f64::from(i) + 2.0)).collect();
        let fit = linear_fit(&pts);
        assert!((fit.a - 3.0).abs() < 1e-9);
        assert!((fit.b - 2.0).abs() < 1e-9);
        assert!((fit.r2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_r2_degrades_with_noise() {
        let pts = vec![(0.0, 0.0), (1.0, 10.0), (2.0, 0.0), (3.0, 10.0)];
        let fit = linear_fit(&pts);
        assert!(fit.r2 < 0.9);
    }

    #[test]
    fn render_table_aligns_columns() {
        let t = render_table(
            &["name", "time"],
            &[
                vec!["a".into(), "1.00".into()],
                vec!["longer".into(), "NA".into()],
            ],
        );
        assert!(t.contains("name"));
        assert!(t.contains("NA"));
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn measurement_cells() {
        let m = Measurement::Done {
            time: Duration::from_millis(1500),
            bytes: 2 * 1024 * 1024,
        };
        assert_eq!(m.time_cell(), "1.50");
        assert_eq!(m.mem_cell(), "2.00");
        assert_eq!(Measurement::TimedOut.time_cell(), "NA");
        assert!(m.time().is_some());
        assert!(Measurement::TimedOut.time().is_none());
    }

    #[test]
    fn makespan_model_prefers_stealing_on_clustered_hard_families() {
        // Eight heavy families first, eight trivial after — the
        // saturation corpus layout. Static chunking piles the heavy
        // prefix onto the first two of four workers.
        let work: Vec<u64> = (0..16).map(|i| if i < 8 { 100 } else { 1 }).collect();
        assert_eq!(static_makespan(&work, 4), 400);
        assert_eq!(worksteal_makespan(&work, 4), 202);
        // Uniform work: both schedules are balanced.
        let flat = vec![10u64; 16];
        assert_eq!(static_makespan(&flat, 4), worksteal_makespan(&flat, 4));
        // Degenerate shapes.
        assert_eq!(static_makespan(&[], 4), 0);
        assert_eq!(worksteal_makespan(&[7], 1), 7);
    }

    #[test]
    fn family_work_sums_profiles_in_family_order() {
        use canary_workloads::{generate, WorkloadSpec};
        let w = generate(&WorkloadSpec {
            family_fanout: 3,
            hard_family_ratio: 1.0,
            contradiction_patterns: 2,
            ..WorkloadSpec::small(0xFA)
        });
        let (_t, _b, _e, m) = run_canary_uaf_profiled(&w);
        let fams = family_work(&m);
        assert!(!fams.is_empty());
        assert!(fams.iter().all(|&x| x > 0), "unit term keeps families nonzero");
        let total: u64 = fams.iter().sum();
        assert!(
            total >= m.query_profiles.len() as u64,
            "at least one unit per profiled query"
        );
    }

    #[test]
    fn tools_agree_on_tiny_workload() {
        use canary_workloads::{generate, WorkloadSpec};
        let w = generate(&WorkloadSpec::small(5));
        let c = measure_canary_vfg(&w);
        assert!(c.time().is_some());
        let s = measure_saber_vfg(&w, Duration::from_secs(30));
        assert!(s.time().is_some());
        let f = measure_fsam_vfg(&w, Duration::from_secs(30));
        assert!(f.time().is_some());
    }

    #[test]
    fn canary_uaf_run_finds_seeded_bugs() {
        use canary_workloads::{generate, WorkloadSpec};
        let w = generate(&WorkloadSpec::small(6));
        let (_t, bytes, eval) = run_canary_uaf(&w);
        assert!(bytes > 0);
        assert_eq!(eval.missed, 0);
    }

    #[test]
    fn baseline_uaf_reports_more_than_canary() {
        use canary_workloads::{generate, WorkloadSpec};
        let w = generate(&WorkloadSpec::small(8));
        let (_t, _b, canary_eval) = run_canary_uaf(&w);
        let (saber_reports, saber_eval) =
            run_baseline_uaf(&w, Duration::from_secs(60), BaselineTool::Saber)
                .expect("small subject fits the budget");
        let canary_total = canary_eval.true_positives + canary_eval.false_positives;
        assert!(
            saber_reports >= canary_total,
            "saber {saber_reports} vs canary {canary_total}"
        );
        assert!(saber_eval.fp_rate() >= canary_eval.fp_rate());
    }
}
