//! Regenerates **Tbl. 1** of the paper: per-subject bug-hunting results
//! for the inter-thread use-after-free checker — Saber and Fsam report
//! volumes and FP rates versus Canary's #FP/#Reports — plus the summary
//! row (paper: Canary 15 reports / 26.67 % FP; Saber ≈9.9k and Fsam
//! ≈586 warnings at ≈100 % FP; NA where the 12-hour budget ran out).
//!
//! Knobs: `CANARY_BENCH_STMTS_PER_KLOC` (default 8),
//! `CANARY_BENCH_TIMEOUT_SECS` (default 60).

use std::time::Duration;

use canary_bench::{env_f64, render_table, run_baseline_uaf, run_canary_uaf, BaselineTool};
use canary_workloads::{generate, table1_suite, SuiteScale};

fn main() {
    let scale = SuiteScale {
        stmts_per_kloc: env_f64("CANARY_BENCH_STMTS_PER_KLOC", 8.0),
        ..SuiteScale::default()
    };
    let budget = Duration::from_secs_f64(env_f64("CANARY_BENCH_TIMEOUT_SECS", 60.0));
    println!(
        "# Tbl. 1 — inter-thread use-after-free hunting (timeout {}s)\n",
        budget.as_secs()
    );

    let mut rows = Vec::new();
    let mut canary_reports_total = 0usize;
    let mut canary_fp_total = 0usize;
    let mut canary_missed = 0usize;
    let mut saber_total = 0usize;
    let mut fsam_total = 0usize;
    for (i, spec) in table1_suite(scale).into_iter().enumerate() {
        let w = generate(&spec);
        let (_t, _b, canary) = run_canary_uaf(&w);
        let saber = run_baseline_uaf(&w, budget, BaselineTool::Saber);
        let fsam = run_baseline_uaf(&w, budget, BaselineTool::Fsam);
        let canary_n = canary.true_positives + canary.false_positives;
        canary_reports_total += canary_n;
        canary_fp_total += canary.false_positives;
        canary_missed += canary.missed;
        let fmt_baseline = |r: &Option<(usize, canary_workloads::Eval)>| -> (String, String) {
            match r {
                Some((n, eval)) => (format!("{:.2}%", eval.fp_rate()), format!("{n}")),
                None => ("NA".into(), "NA".into()),
            }
        };
        if let Some((n, _)) = &saber {
            saber_total += n;
        }
        if let Some((n, _)) = &fsam {
            fsam_total += n;
        }
        let (saber_fp, saber_n) = fmt_baseline(&saber);
        let (fsam_fp, fsam_n) = fmt_baseline(&fsam);
        rows.push(vec![
            format!("{}. {}", i + 1, spec.name),
            format!("{}", w.prog.stmt_count()),
            saber_fp,
            saber_n,
            fsam_fp,
            fsam_n,
            format!("{}", canary.false_positives),
            format!("{canary_n}"),
        ]);
        eprintln!("  done: {}", spec.name);
    }
    println!(
        "{}",
        render_table(
            &[
                "project", "stmts", "saber-FPrate", "saber-#Rep", "fsam-FPrate", "fsam-#Rep",
                "canary-#FP", "canary-#Rep",
            ],
            &rows
        )
    );
    let fp_rate = if canary_reports_total == 0 {
        0.0
    } else {
        canary_fp_total as f64 / canary_reports_total as f64 * 100.0
    };
    println!("## Summary (cf. Tbl. 1 / §7.2)");
    println!(
        "Canary: {canary_reports_total} reports, {canary_fp_total} FP \
         ({fp_rate:.2}% FP rate; paper: 15 reports, 26.67%), {canary_missed} seeded bugs missed"
    );
    println!(
        "Saber:  {saber_total} warnings on finished subjects (paper: ~9.9k overall)"
    );
    println!("Fsam:   {fsam_total} warnings on finished subjects (paper: ~586 overall)");

    // Self-check of the Tbl. 1 shape claims.
    let canary_matches_paper = canary_reports_total == 15
        && canary_fp_total == 4
        && canary_missed == 0;
    let volume_ordering =
        saber_total >= fsam_total && fsam_total >= canary_reports_total;
    println!(
        "shape check (Canary 15 reports / 4 FP / 0 missed; Saber ≥ Fsam ≥ Canary \
         report volume): {}",
        if canary_matches_paper && volume_ordering {
            "PASS"
        } else {
            "FAIL"
        }
    );
}
