//! Regenerates **Fig. 7** of the paper: time (7a) and memory (7b) for
//! building the value-flow graph — Saber vs. Fsam vs. Canary — over the
//! twenty Tbl. 1 subjects ordered by program size, plus the headline
//! speedup summary of §7.1 ("on average >15×/180× faster, at most
//! >70×/>500×").
//!
//! Scaling knobs (environment):
//! * `CANARY_BENCH_STMTS_PER_KLOC` (default 8) — subject size scale;
//! * `CANARY_BENCH_TIMEOUT_SECS` (default 60) — the per-tool budget
//!   standing in for the paper's 12-hour limit.

use std::time::Duration;

use canary_bench::{
    attribution_report, env_f64, measure_canary_vfg, measure_front_end, measure_fsam_vfg,
    measure_saber_vfg, phase_breakdown, render_table, Measurement,
};
use canary_workloads::{generate, table1_suite, SuiteScale};

fn main() {
    let scale = SuiteScale {
        stmts_per_kloc: env_f64("CANARY_BENCH_STMTS_PER_KLOC", 8.0),
        ..SuiteScale::default()
    };
    let budget = Duration::from_secs_f64(env_f64("CANARY_BENCH_TIMEOUT_SECS", 60.0));
    println!(
        "# Fig. 7 — VFG construction: Saber vs Fsam vs Canary \
         (timeout {}s, {} stmts/KLoC)\n",
        budget.as_secs(),
        scale.stmts_per_kloc
    );

    let mut rows = Vec::new();
    let mut speedup_saber: Vec<f64> = Vec::new();
    let mut speedup_fsam: Vec<f64> = Vec::new();
    let mut saber_timeouts = 0;
    let mut fsam_timeouts = 0;
    let mut largest: Option<(String, canary_workloads::Workload)> = None;

    for (i, spec) in table1_suite(scale).into_iter().enumerate() {
        let w = generate(&spec);
        let canary = measure_canary_vfg(&w);
        let saber = measure_saber_vfg(&w, budget);
        let fsam = measure_fsam_vfg(&w, budget);
        if let (Some(ct), Some(st)) = (canary.time(), saber.time()) {
            speedup_saber.push(st.as_secs_f64() / ct.as_secs_f64().max(1e-9));
        }
        if let (Some(ct), Some(ft)) = (canary.time(), fsam.time()) {
            speedup_fsam.push(ft.as_secs_f64() / ct.as_secs_f64().max(1e-9));
        }
        if matches!(saber, Measurement::TimedOut) {
            saber_timeouts += 1;
        }
        if matches!(fsam, Measurement::TimedOut) {
            fsam_timeouts += 1;
        }
        rows.push(vec![
            format!("{}", i + 1),
            spec.name.clone(),
            format!("{}", w.prog.stmt_count()),
            saber.time_cell(),
            fsam.time_cell(),
            canary.time_cell(),
            saber.mem_cell(),
            fsam.mem_cell(),
            canary.mem_cell(),
        ]);
        eprintln!("  done: {}", spec.name);
        let bigger = largest
            .as_ref()
            .is_none_or(|(_, l)| l.prog.stmt_count() < w.prog.stmt_count());
        if bigger {
            largest = Some((spec.name.clone(), w));
        }
    }

    println!(
        "{}",
        render_table(
            &[
                "#", "subject", "stmts", "saber-t(s)", "fsam-t(s)", "canary-t(s)",
                "saber-MiB", "fsam-MiB", "canary-MiB",
            ],
            &rows,
        )
    );

    let avg = |v: &[f64]| -> f64 {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    let max = |v: &[f64]| v.iter().copied().fold(0.0f64, f64::max);
    println!("## Summary (cf. §7.1)");
    println!(
        "Canary vs Saber: avg {:.1}x faster, max {:.1}x (on subjects Saber finished); \
         Saber timed out on {saber_timeouts}/20",
        avg(&speedup_saber),
        max(&speedup_saber)
    );
    println!(
        "Canary vs Fsam:  avg {:.1}x faster, max {:.1}x (on subjects Fsam finished); \
         Fsam timed out on {fsam_timeouts}/20",
        avg(&speedup_fsam),
        max(&speedup_fsam)
    );
    println!("Canary finished all 20 subjects.");

    // Self-check of the Fig. 7 shape claims.
    let canary_all = rows.iter().all(|r| r[5] != "NA");
    let baselines_struggle = saber_timeouts + fsam_timeouts > 0
        || (max(&speedup_saber) > 5.0 && max(&speedup_fsam) > 5.0);
    let fsam_never_outlasts_saber = fsam_timeouts >= saber_timeouts;
    println!(
        "shape check (Canary finishes all / baselines time out or trail badly / \
         Fsam dies no later than Saber): {}",
        if canary_all && baselines_struggle && fsam_never_outlasts_saber {
            "PASS"
        } else {
            "FAIL"
        }
    );

    // Drill-down on the largest subject: where Canary's front-end time
    // goes (phases) and which functions dominate Alg. 1.
    if let Some((name, w)) = largest {
        let m = measure_front_end(&w, 1);
        println!("\n## Front-end breakdown — {name} (largest subject)");
        println!(
            "{}",
            render_table(&["phase", "wall(ms)", "tasks", "share(%)"], &phase_breakdown(&m))
        );
        print!("{}", attribution_report(&m, 5));
    }
}
