fn main() {
    for stmts in [8000usize, 16000, 32000, 64000] {
        let spec = canary_workloads::WorkloadSpec {
            target_stmts: stmts,
            ..canary_workloads::WorkloadSpec::small(3)
        };
        let w = canary_workloads::generate(&spec);
        let canary = canary_core::Canary::new();
        let t0 = std::time::Instant::now();
        let (_p, _df, _ir, _cg, _ts, m) = canary.build_vfg(&w.prog);
        println!(
            "{} stmts: total {:?} (dataflow {:?}, interference {:?})",
            w.prog.stmt_count(), t0.elapsed(), m.t_dataflow, m.t_interference
        );
    }
}
