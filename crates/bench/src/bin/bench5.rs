//! PR-9 benchmark: MLoC-scale detect — sharded work-stealing dispatch,
//! §5.2 cube escalation, and bounded-memory summary spill.
//!
//! Reproduces the Fig. 7 timeout-onset shape on the saturation corpus
//! (`canary_bench::saturation_corpus`): per subject size, detect wall
//! and solver work under *fresh*, *incremental*, and
//! *incremental+cubes*, then the dispatcher comparison and the memory
//! budget check. Writes `BENCH_5.json` with three gates:
//!
//! 1. **dispatch** — work-stealing detect ≥ 1.3× over static batching
//!    at 4 threads. On a multi-core host this is measured wall time;
//!    on a single-core host four workers time-slice one CPU and wall
//!    "speedup" is a coin flip, so the gate falls back to the
//!    deterministic makespan model over the per-family work vector
//!    (`canary_bench::{family_work, static_makespan,
//!    worksteal_makespan}`) — the schedule the dispatchers provably
//!    produce, not the noise the scheduler adds (the same fallback
//!    `assert_thread_scaling_sane` uses).
//! 2. **cubes** — incremental+cubes is no worse than incremental
//!    (wall within 10% or work within 10%) *and* escalation
//!    demonstrably fired (`cube_escalated > 0`).
//! 3. **memory** — with `memory_budget_mb` set, the `VmHWM` gauge
//!    stays within budget (baseline peak + fixed headroom), summaries
//!    actually spill, and findings are byte-identical.
//!
//! Reports are asserted byte-identical across strategies, dispatchers,
//! shard counts and cube settings on every subject before anything is
//! written.
//!
//! Usage: `cargo run --release -p canary-bench --bin bench5 [OUT.json]`
//! Knobs: `CANARY_BENCH_REPS` (wall samples per configuration, default
//! 3, best-of), `CANARY_BENCH_STMTS` (subject size scale, default 1.0).

use std::time::Instant;

use canary_bench::{
    env_f64, family_work, report_fingerprint, saturation_corpus, static_makespan,
    worksteal_makespan,
};
use canary_core::{Canary, CanaryConfig, Metrics};
use canary_smt::{Dispatch, SolverStrategy};

/// Conflict budget armed together with `cube_split`. Set above the
/// typical hard-member refutation cost (the corpus's per-member
/// conflict staircase tops out at 16) so only the heaviest tail
/// escalates — the budget is tail insurance, not the common path, and
/// the aggregate no-regression gate below holds it to that.
const CUBE_BUDGET: u64 = 12;

#[derive(Clone, Copy)]
struct Knobs {
    strategy: SolverStrategy,
    dispatch: Dispatch,
    shards: usize,
    cube_split: usize,
    threads: usize,
    budget_mb: Option<u64>,
}

impl Knobs {
    fn incremental() -> Knobs {
        Knobs {
            strategy: SolverStrategy::Incremental,
            dispatch: Dispatch::WorkSteal,
            shards: 0,
            cube_split: 0,
            threads: 1,
            budget_mb: None,
        }
    }

    fn config(self) -> CanaryConfig {
        let mut c = CanaryConfig::default();
        c.detect.solver.strategy = self.strategy;
        c.detect.solver.dispatch = self.dispatch;
        c.detect.solver.shards = self.shards;
        c.detect.solver.cube_split = self.cube_split;
        c.detect.solver.cube_budget = CUBE_BUDGET;
        c.detect.solver.num_threads = self.threads;
        c.memory_budget_mb = self.budget_mb;
        c
    }
}

struct Run {
    metrics: Metrics,
    fingerprint: String,
    /// Best-of-reps seconds (counters come from `metrics`, identical
    /// across repetitions by determinism).
    detect_secs: f64,
    total_secs: f64,
}

fn run(prog: &canary_ir::Program, knobs: Knobs, reps: usize) -> Run {
    let mut best: Option<Run> = None;
    for _ in 0..reps.max(1) {
        let canary = Canary::with_config(knobs.config());
        let t0 = Instant::now();
        let outcome = canary.analyze(prog);
        let sample = Run {
            total_secs: t0.elapsed().as_secs_f64(),
            detect_secs: outcome.metrics.t_detect.as_secs_f64(),
            fingerprint: report_fingerprint(&outcome),
            metrics: outcome.metrics,
        };
        match &best {
            Some(b) if b.detect_secs <= sample.detect_secs => {}
            _ => best = Some(sample),
        }
    }
    best.expect("at least one repetition")
}

fn work(m: &Metrics) -> u64 {
    m.detect.conflicts + m.detect.decisions
}

fn curve_json(r: &Run) -> serde_json::Value {
    let d = &r.metrics.detect;
    serde_json::json!({
        "detect_s": r.detect_secs,
        "total_s": r.total_secs,
        "solver": {
            "queries": d.queries,
            "prefiltered": d.prefiltered,
            "decisions": d.decisions,
            "conflicts": d.conflicts,
            "propagations": d.propagations,
            "theory_lemmas": d.theory_lemmas,
            "families": d.families,
            "core_subsumed": d.core_subsumed,
            "cube_escalated": d.cube_escalated,
            "shard_epochs": d.epochs,
        },
    })
}

#[allow(clippy::too_many_lines)]
fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_5.json".into());
    let reps = env_f64("CANARY_BENCH_REPS", 3.0) as usize;
    let scale = env_f64("CANARY_BENCH_STMTS", 1.0);
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let subjects = saturation_corpus(scale);

    let mut rows = Vec::new();
    let mut agg_fresh_s = 0.0f64;
    let mut agg_incr_s = 0.0f64;
    let mut agg_cubes_s = 0.0f64;
    let mut agg_incr_work = 0u64;
    let mut agg_cubes_work = 0u64;
    let mut agg_escalated = 0u64;
    let mut agg_static_model = 0u64;
    let mut agg_steal_model = 0u64;
    let mut agg_static_s = 0.0f64;
    let mut agg_steal_s = 0.0f64;

    for (name, w) in &subjects {
        // --- Fig. 7 curve: fresh vs incremental vs incremental+cubes.
        let fresh = run(
            &w.prog,
            Knobs {
                strategy: SolverStrategy::Fresh,
                ..Knobs::incremental()
            },
            reps,
        );
        let incr = run(&w.prog, Knobs::incremental(), reps);
        let cubes = run(
            &w.prog,
            Knobs {
                cube_split: 2,
                ..Knobs::incremental()
            },
            reps,
        );
        assert_eq!(fresh.fingerprint, incr.fingerprint, "{name}: fresh vs incremental");
        assert_eq!(incr.fingerprint, cubes.fingerprint, "{name}: cubes changed verdicts");

        // --- dispatcher comparison at 4 threads.
        let stat4 = run(
            &w.prog,
            Knobs {
                dispatch: Dispatch::Static,
                threads: 4,
                ..Knobs::incremental()
            },
            reps,
        );
        let steal4 = run(
            &w.prog,
            Knobs {
                threads: 4,
                ..Knobs::incremental()
            },
            reps,
        );
        assert_eq!(stat4.fingerprint, steal4.fingerprint, "{name}: dispatchers diverged");
        // Byte-identity across shard counts and a cubed 4-thread run.
        for shards in [1, 4, 16] {
            let r = run(
                &w.prog,
                Knobs {
                    shards,
                    threads: 4,
                    ..Knobs::incremental()
                },
                1,
            );
            assert_eq!(
                r.fingerprint, steal4.fingerprint,
                "{name}: {shards} shard(s) changed reports"
            );
        }
        let cubed4 = run(
            &w.prog,
            Knobs {
                cube_split: 2,
                threads: 4,
                ..Knobs::incremental()
            },
            1,
        );
        assert_eq!(cubed4.fingerprint, steal4.fingerprint, "{name}: 4-thread cubes diverged");

        // The deterministic makespan model over per-family work — the
        // dispatch gate's single-core fallback. Profiles are identical
        // across dispatchers (asserted above), so one vector serves both.
        let fams = family_work(&steal4.metrics);
        let model_static = static_makespan(&fams, 4);
        let model_steal = worksteal_makespan(&fams, 4);

        agg_fresh_s += fresh.detect_secs;
        agg_incr_s += incr.detect_secs;
        agg_cubes_s += cubes.detect_secs;
        agg_incr_work += work(&incr.metrics);
        agg_cubes_work += work(&cubes.metrics);
        agg_escalated += cubes.metrics.detect.cube_escalated;
        agg_static_model += model_static;
        agg_steal_model += model_steal;
        agg_static_s += stat4.detect_secs;
        agg_steal_s += steal4.detect_secs;

        println!(
            "{name}: detect fresh {:.1}ms | incr {:.1}ms | +cubes {:.1}ms ({} escalated) | static@4 {:.1}ms vs steal@4 {:.1}ms | model {} vs {}",
            fresh.detect_secs * 1e3,
            incr.detect_secs * 1e3,
            cubes.detect_secs * 1e3,
            cubes.metrics.detect.cube_escalated,
            stat4.detect_secs * 1e3,
            steal4.detect_secs * 1e3,
            model_static,
            model_steal,
        );

        rows.push(serde_json::json!({
            "subject": name,
            "stmts": w.prog.stmt_count(),
            "curve": {
                "fresh": curve_json(&fresh),
                "incremental": curve_json(&incr),
                "incremental_cubes": curve_json(&cubes),
            },
            "dispatch": {
                "families": fams.len(),
                "static_detect_s": stat4.detect_secs,
                "worksteal_detect_s": steal4.detect_secs,
                "static_model_work": model_static,
                "worksteal_model_work": model_steal,
                "model_speedup": model_static as f64 / (model_steal as f64).max(1.0),
                "reports_identical": true,
            },
        }));
    }

    // --- memory budget on the largest subject -----------------------
    let (big_name, big) = subjects.last().expect("nonempty corpus");
    let unbudgeted = run(&big.prog, Knobs::incremental(), 1);
    let peak_before_mib = canary_trace::metrics::peak_rss_bytes() / (1024 * 1024);
    // Fixed headroom over the already-reached process peak: the
    // budgeted run must fit in it because its summaries spill to disk.
    let budget_mib = peak_before_mib + 64;
    let budgeted = run(
        &big.prog,
        Knobs {
            budget_mb: Some(budget_mib),
            ..Knobs::incremental()
        },
        1,
    );
    assert_eq!(
        unbudgeted.fingerprint, budgeted.fingerprint,
        "{big_name}: memory budget changed findings"
    );
    let peak_after_mib = canary_trace::metrics::peak_rss_bytes() / (1024 * 1024);
    let spill = &budgeted.metrics.spill;
    let mem_pass = peak_after_mib <= budget_mib && spill.entries > 0 && spill.bytes_written > 0;
    println!(
        "memory: budget {budget_mib} MiB | VmHWM {peak_after_mib} MiB | {} summaries spilled, {} bytes written, {} evicted | {}",
        spill.entries,
        spill.bytes_written,
        spill.evictions,
        if mem_pass { "PASS" } else { "FAIL" },
    );

    // --- gates ------------------------------------------------------
    let wall_speedup = agg_static_s / agg_steal_s.max(1e-9);
    #[allow(clippy::cast_precision_loss)]
    let model_speedup = agg_static_model as f64 / (agg_steal_model as f64).max(1.0);
    let dispatch_speedup = if cores >= 2 { wall_speedup } else { model_speedup };
    let dispatch_pass = dispatch_speedup >= 1.3;
    #[allow(clippy::cast_precision_loss)]
    let cubes_ok = agg_cubes_s <= agg_incr_s * 1.10
        || agg_cubes_work as f64 <= agg_incr_work as f64 * 1.10;
    let cubes_pass = cubes_ok && agg_escalated > 0;
    let pass = dispatch_pass && cubes_pass && mem_pass;
    println!(
        "aggregate: incr {:.1}ms | +cubes {:.1}ms ({agg_escalated} escalated) | static@4 {:.1}ms vs steal@4 {:.1}ms | wall {wall_speedup:.2}x, model {model_speedup:.2}x ({} gates) | gate {}",
        agg_incr_s * 1e3,
        agg_cubes_s * 1e3,
        agg_static_s * 1e3,
        agg_steal_s * 1e3,
        if cores >= 2 { "wall" } else { "model: single-core host" },
        if pass { "PASS" } else { "FAIL" },
    );

    let doc = serde_json::json!({
        "bench": "BENCH_5 MLoC-scale detect: work-stealing shards, cube escalation, memory budget",
        "reps": reps,
        "host_cores": cores,
        "subjects": rows,
        "aggregate": {
            "fresh_detect_s": agg_fresh_s,
            "incremental_detect_s": agg_incr_s,
            "cubes_detect_s": agg_cubes_s,
            "incremental_work": agg_incr_work,
            "cubes_work": agg_cubes_work,
            "cube_escalated": agg_escalated,
            "static_detect_s": agg_static_s,
            "worksteal_detect_s": agg_steal_s,
            "static_model_work": agg_static_model,
            "worksteal_model_work": agg_steal_model,
            "wall_speedup": wall_speedup,
            "model_speedup": model_speedup,
        },
        "memory": {
            // Budget and peaks are derived from the host's RSS at run
            // time — informational keys (no gated suffix), never
            // compared across runs by `canary bench diff`.
            "budget_mib": budget_mib,
            "vmhwm_mib": peak_after_mib,
            "summaries_spilled": spill.entries,
            "spill_evictions": spill.evictions,
            "findings_identical": true,
        },
        "gate": {
            "criterion": "dispatch speedup >= 1.3 (wall on multi-core, makespan model on single-core) AND cubes no worse than incremental (wall or work within 10%) with escalation firing AND VmHWM within budget with findings unchanged",
            "dispatch_speedup": dispatch_speedup,
            "dispatch_pass": dispatch_pass,
            "cubes_pass": cubes_pass,
            "memory_pass": mem_pass,
            "pass": pass,
        },
    });
    std::fs::write(&out_path, serde_json::to_string_pretty(&doc).expect("valid json"))
        .unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("wrote {out_path}");
    assert!(pass, "acceptance gate failed: see {out_path}");
}
