//! Regenerates **Fig. 8** of the paper: Canary's end-to-end scalability
//! for bug hunting — time and memory versus program size, with the
//! least-squares linear fits and R² statistics the paper reports
//! (time ≈ 0.0326·x + 25.4 min, R² = 0.83; memory ≈ 0.0193·x + 18.3 GB,
//! R² = 0.78 on the authors' testbed; the *shape* — near-linear growth
//! with R² around 0.8 — is the reproduced claim).
//!
//! Knobs: `CANARY_BENCH_STMTS_PER_KLOC` (default 8).

use canary_bench::{
    attribution_report, env_f64, linear_fit, phase_breakdown, render_table,
    run_canary_uaf_profiled,
};
use canary_workloads::{generate, table1_suite, SuiteScale};

fn main() {
    let scale = SuiteScale {
        stmts_per_kloc: env_f64("CANARY_BENCH_STMTS_PER_KLOC", 8.0),
        ..SuiteScale::default()
    };
    println!("# Fig. 8 — Canary bug-hunting scalability (full pipeline)\n");

    let mut rows = Vec::new();
    let mut time_pts: Vec<(f64, f64)> = Vec::new();
    let mut mem_pts: Vec<(f64, f64)> = Vec::new();
    let mut largest: Option<(String, usize, canary_core::Metrics)> = None;
    for spec in table1_suite(scale) {
        let w = generate(&spec);
        let (time, bytes, eval, metrics) = run_canary_uaf_profiled(&w);
        let x = w.prog.stmt_count() as f64;
        let t_ms = time.as_secs_f64() * 1000.0;
        let mem_mib = bytes as f64 / (1024.0 * 1024.0);
        time_pts.push((x, t_ms));
        mem_pts.push((x, mem_mib));
        rows.push(vec![
            spec.name.clone(),
            format!("{}", w.prog.stmt_count()),
            format!("{t_ms:.1}"),
            format!("{mem_mib:.2}"),
            format!("{}", eval.true_positives),
            format!("{}", eval.false_positives),
        ]);
        eprintln!("  done: {}", spec.name);
        let stmts = w.prog.stmt_count();
        if largest.as_ref().is_none_or(|(_, n, _)| *n < stmts) {
            largest = Some((spec.name.clone(), stmts, metrics));
        }
    }
    println!(
        "{}",
        render_table(
            &["subject", "stmts", "time(ms)", "mem(MiB)", "TP", "FP"],
            &rows
        )
    );

    let tf = linear_fit(&time_pts);
    let mf = linear_fit(&mem_pts);
    println!("## Fits (cf. Fig. 8: near-linear, R² ≈ 0.8)");
    println!(
        "time(ms) ≈ {:.5}·stmts + {:.2}   R² = {:.3}",
        tf.a, tf.b, tf.r2
    );
    println!(
        "mem(MiB) ≈ {:.6}·stmts + {:.3}   R² = {:.3}",
        mf.a, mf.b, mf.r2
    );
    let shape_holds = tf.r2 > 0.6 && mf.r2 > 0.6 && tf.a > 0.0 && mf.a > 0.0;
    println!(
        "shape check (positive slope, R² > 0.6 for both): {}",
        if shape_holds { "PASS" } else { "FAIL" }
    );

    // Drill-down on the largest subject: per-phase time split and the
    // hottest functions/SMT queries from the attribution profiles.
    if let Some((name, _stmts, m)) = largest {
        println!("\n## Pipeline breakdown — {name} (largest subject)");
        println!(
            "{}",
            render_table(&["phase", "wall(ms)", "tasks", "share(%)"], &phase_breakdown(&m))
        );
        print!("{}", attribution_report(&m, 5));
    }

    // Solver-strategy ablation on a query-family-heavy subject: how
    // much of the detect phase the incremental back-end (shared-prefix
    // solving + UNSAT-core subsumption + memoization) recovers over
    // solving every query fresh.
    println!("\n## Solver-strategy ablation (query-family subject)");
    let fam = canary_bench::family_subject(4, 10, 6);
    let mut rows = Vec::new();
    for (label, strategy) in [
        ("fresh", canary_smt::SolverStrategy::Fresh),
        ("incremental", canary_smt::SolverStrategy::Incremental),
    ] {
        let mut cfg = canary_core::CanaryConfig::default();
        cfg.detect.solver.strategy = strategy;
        let outcome = canary_core::Canary::with_config(cfg).analyze(&fam);
        let d = &outcome.metrics.detect;
        rows.push(vec![
            label.to_string(),
            format!("{:.1}", outcome.metrics.t_detect.as_secs_f64() * 1e3),
            format!("{}", d.queries),
            format!("{}", d.decisions),
            format!("{}", d.conflicts),
            format!("{}", d.theory_lemmas),
            format!("{}", d.memo_hits + d.core_subsumed),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "strategy", "detect(ms)", "queries", "decisions", "conflicts", "lemmas", "reused"
            ],
            &rows
        )
    );
}
