//! PR-8 benchmark: run-health telemetry overhead.
//!
//! Runs the full pipeline over the shared BENCH_4 corpus twice per
//! subject — telemetry **off** (plain `analyze`) and telemetry **on**
//! (same run plus building the metrics registry and writing its
//! OpenMetrics export, what `--metrics-out` adds) — and writes
//! `BENCH_8.json` with:
//!
//! * per-subject best-of-reps wall times for both modes;
//! * deterministic per-subject metrics (work counters, byte gauges)
//!   in the shape `canary bench diff` gates on;
//! * the PR's acceptance gate: telemetry-on total wall within 3% of
//!   telemetry-off across the corpus.
//!
//! The on/off runs are interleaved per repetition so slow-machine
//! drift (thermal, noisy neighbors) hits both modes equally, and each
//! mode keeps its best-of-reps sample — the same noise damping bench4
//! uses.
//!
//! Usage: `cargo run --release -p canary-bench --bin bench8 [OUT.json]`
//! Knobs: `CANARY_BENCH_REPS` (default 5, best-of),
//! `CANARY_BENCH_STMTS` (generated-subject size scale, default 1.0).

use std::time::Instant;

use canary_bench::{bench_corpus, env_f64};
use canary_core::{Canary, CanaryConfig, Metrics};

struct SubjectRun {
    metrics: Metrics,
    off_secs: f64,
    on_secs: f64,
    export_bytes: usize,
}

fn measure(prog: &canary_ir::Program, reps: usize, scratch: &std::path::Path) -> SubjectRun {
    let mut best_off = f64::INFINITY;
    let mut best_on = f64::INFINITY;
    let mut metrics: Option<Metrics> = None;
    let mut export_bytes = 0;
    for _ in 0..reps.max(1) {
        // Telemetry off: exactly what a default CLI run executes.
        let t0 = Instant::now();
        let outcome_off = Canary::with_config(CanaryConfig::default()).analyze(prog);
        best_off = best_off.min(t0.elapsed().as_secs_f64());
        drop(outcome_off);

        // Telemetry on: the same analysis plus registry construction
        // and the OpenMetrics text write — the `--metrics-out` path.
        let t1 = Instant::now();
        let outcome_on = Canary::with_config(CanaryConfig::default()).analyze(prog);
        let registry = outcome_on.metrics.to_registry();
        let text = registry.to_openmetrics();
        std::fs::write(scratch, &text).expect("write scratch export");
        best_on = best_on.min(t1.elapsed().as_secs_f64());
        export_bytes = text.len();
        metrics = Some(outcome_on.metrics);
    }
    SubjectRun {
        metrics: metrics.expect("at least one repetition"),
        off_secs: best_off,
        on_secs: best_on,
        export_bytes,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_8.json".into());
    let reps = env_f64("CANARY_BENCH_REPS", 5.0) as usize;
    let scale = env_f64("CANARY_BENCH_STMTS", 1.0);
    let subjects = bench_corpus(scale);
    let scratch = std::env::temp_dir().join("canary_bench8_metrics.txt");

    let mut rows = Vec::new();
    let mut off_total = 0.0f64;
    let mut on_total = 0.0f64;
    for (name, prog) in &subjects {
        let r = measure(prog, reps, &scratch);
        off_total += r.off_secs;
        on_total += r.on_secs;
        let m = &r.metrics;
        println!(
            "{name}: off {:.1}ms, on {:.1}ms ({:+.1}%) | export {}B, {} families",
            r.off_secs * 1e3,
            r.on_secs * 1e3,
            (r.on_secs / r.off_secs.max(1e-9) - 1.0) * 100.0,
            r.export_bytes,
            m.to_registry().len(),
        );
        rows.push(serde_json::json!({
            "subject": name,
            "telemetry_off_total_s": r.off_secs,
            "telemetry_on_total_s": r.on_secs,
            "detect_s": m.t_detect.as_secs_f64(),
            "dataflow_s": m.t_dataflow.as_secs_f64(),
            "interference_s": m.t_interference.as_secs_f64(),
            // Deterministic gauges/counters: the leaves `canary bench
            // diff` gates byte-for-byte between PRs.
            "vfg_bytes": m.vfg_bytes,
            "term_table_bytes": m.term_bytes,
            "smt_queries": m.detect.queries,
            "conflicts_plus_decisions_work": m.detect.conflicts + m.detect.decisions,
            "openmetrics_export_bytes": r.export_bytes,
        }));
    }
    let _ = std::fs::remove_file(&scratch);

    let overhead = on_total / off_total.max(1e-9) - 1.0;
    let pass = overhead <= 0.03;
    println!(
        "aggregate: off {:.1}ms, on {:.1}ms ({:+.2}% overhead) | gate {}",
        off_total * 1e3,
        on_total * 1e3,
        overhead * 100.0,
        if pass { "PASS" } else { "FAIL" },
    );

    let doc = serde_json::json!({
        "bench": "BENCH_8 run-health telemetry overhead",
        "reps": reps,
        "subjects": rows,
        "aggregate": {
            "telemetry_off_total_s": off_total,
            "telemetry_on_total_s": on_total,
            "overhead_ratio": overhead,
        },
        "gate": {
            "criterion": "telemetry_on_total_s <= 1.03 * telemetry_off_total_s",
            "pass": pass,
        },
    });
    std::fs::write(&out_path, serde_json::to_string_pretty(&doc).expect("valid json"))
        .unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("wrote {out_path}");
    assert!(pass, "acceptance gate failed: see {out_path}");
}
