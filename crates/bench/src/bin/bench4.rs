//! PR-4 benchmark: incremental query-family solving vs the fresh
//! per-query baseline.
//!
//! Runs every checker over a fixed corpus — the shipped `.cir`
//! examples plus deterministic generated workloads — once per solver
//! strategy, and writes `BENCH_4.json` with:
//!
//! * per-phase wall times (dataflow / interference / detect);
//! * solver totals (queries, decisions, conflicts, propagations);
//! * reuse counters (families, memo hits, core subsumptions,
//!   incremental queries, clauses retained) and the derived hit rates;
//! * per-subject and aggregate fresh-vs-incremental comparisons, and
//!   the PR's acceptance gate: detect-phase wall ≥ 1.5× faster *or*
//!   ≥ 30% fewer CDCL conflicts + decisions (the work-based criterion
//!   exists because single-core CI wall times are noisy).
//!
//! Reports are asserted byte-identical across strategies on every
//! subject before anything is written.
//!
//! Usage: `cargo run --release -p canary-bench --bin bench4 [OUT.json]`
//! Knobs: `CANARY_BENCH_REPS` (wall-time samples per configuration,
//! default 3, best-of), `CANARY_BENCH_STMTS` (generated-subject size
//! scale, default 1.0).

use std::time::Instant;

use canary_bench::{bench_corpus, env_f64, report_fingerprint};
use canary_core::{Canary, CanaryConfig, Metrics};
use canary_smt::SolverStrategy;

fn config(strategy: SolverStrategy) -> CanaryConfig {
    let mut c = CanaryConfig::default();
    c.detect.solver.strategy = strategy;
    c
}

struct StrategyRun {
    metrics: Metrics,
    fingerprint: String,
    /// Best-of-reps detect wall seconds (counters come from `metrics`,
    /// which is identical across repetitions by determinism).
    detect_secs: f64,
    dataflow_secs: f64,
    interference_secs: f64,
    total_secs: f64,
}

fn run(prog: &canary_ir::Program, strategy: SolverStrategy, reps: usize) -> StrategyRun {
    let mut best: Option<StrategyRun> = None;
    for _ in 0..reps.max(1) {
        let canary = Canary::with_config(config(strategy));
        let t0 = Instant::now();
        let outcome = canary.analyze(prog);
        let total_secs = t0.elapsed().as_secs_f64();
        let m = &outcome.metrics;
        let sample = StrategyRun {
            detect_secs: m.t_detect.as_secs_f64(),
            dataflow_secs: m.t_dataflow.as_secs_f64(),
            interference_secs: m.t_interference.as_secs_f64(),
            total_secs,
            fingerprint: report_fingerprint(&outcome),
            metrics: outcome.metrics,
        };
        match &best {
            Some(b) if b.detect_secs <= sample.detect_secs => {}
            _ => best = Some(sample),
        }
    }
    best.expect("at least one repetition")
}

fn strategy_json(r: &StrategyRun) -> serde_json::Value {
    let d = &r.metrics.detect;
    let rate = |n: u64| {
        if d.queries > 0 {
            n as f64 / d.queries as f64
        } else {
            0.0
        }
    };
    serde_json::json!({
        "phases": {
            "dataflow_s": r.dataflow_secs,
            "interference_s": r.interference_secs,
            "detect_s": r.detect_secs,
            "total_s": r.total_secs,
        },
        "solver": {
            "queries": d.queries,
            "prefiltered": d.prefiltered,
            "confirmed": d.confirmed,
            "decisions": d.decisions,
            "conflicts": d.conflicts,
            "propagations": d.propagations,
            "learned": d.learned,
            "theory_lemmas": d.theory_lemmas,
            "families": d.families,
            "memo_hits": d.memo_hits,
            "core_subsumed": d.core_subsumed,
            "incremental_queries": d.incremental,
            "clauses_retained": d.clauses_retained,
            "memo_hit_rate": rate(d.memo_hits),
            "core_subsumption_rate": rate(d.core_subsumed),
            "reuse_rate": rate(d.memo_hits + d.core_subsumed),
        },
    })
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_4.json".into());
    let reps = env_f64("CANARY_BENCH_REPS", 3.0) as usize;
    let scale = env_f64("CANARY_BENCH_STMTS", 1.0);

    // Fixed corpus shared with bench8 (see `canary_bench::bench_corpus`):
    // the shipped examples plus deterministic generated subjects. The
    // "dense" subjects seed many candidates per source — the
    // query-family shape the incremental back-end exists for.
    let subjects = bench_corpus(scale);

    let mut rows = Vec::new();
    let mut fresh_detect = 0.0f64;
    let mut incr_detect = 0.0f64;
    let mut fresh_work = 0u64;
    let mut incr_work = 0u64;
    for (name, prog) in &subjects {
        let fresh = run(prog, SolverStrategy::Fresh, reps);
        let incr = run(prog, SolverStrategy::Incremental, reps);
        assert_eq!(
            fresh.fingerprint, incr.fingerprint,
            "{name}: reports/verdicts diverged between strategies"
        );
        fresh_detect += fresh.detect_secs;
        incr_detect += incr.detect_secs;
        let work = |m: &Metrics| m.detect.conflicts + m.detect.decisions;
        fresh_work += work(&fresh.metrics);
        incr_work += work(&incr.metrics);
        let d = &incr.metrics.detect;
        println!(
            "{name}: detect {:.1}ms -> {:.1}ms | work {} -> {} | {} families, {} memo, {} core-subsumed / {} queries",
            fresh.detect_secs * 1e3,
            incr.detect_secs * 1e3,
            work(&fresh.metrics),
            work(&incr.metrics),
            d.families,
            d.memo_hits,
            d.core_subsumed,
            d.queries,
        );
        rows.push(serde_json::json!({
            "subject": name,
            "fresh": strategy_json(&fresh),
            "incremental": strategy_json(&incr),
            "reports_identical": true,
            "detect_speedup": fresh.detect_secs / incr.detect_secs.max(1e-9),
            "work_reduction": if work(&fresh.metrics) > 0 {
                1.0 - work(&incr.metrics) as f64 / work(&fresh.metrics) as f64
            } else {
                0.0
            },
        }));
    }

    let detect_speedup = fresh_detect / incr_detect.max(1e-9);
    let work_reduction = if fresh_work > 0 {
        1.0 - incr_work as f64 / fresh_work as f64
    } else {
        0.0
    };
    let pass = detect_speedup >= 1.5 || work_reduction >= 0.30;
    println!(
        "aggregate: detect {:.1}ms -> {:.1}ms ({detect_speedup:.2}x) | conflicts+decisions {fresh_work} -> {incr_work} ({:.1}% less) | gate {}",
        fresh_detect * 1e3,
        incr_detect * 1e3,
        work_reduction * 100.0,
        if pass { "PASS" } else { "FAIL" },
    );

    let doc = serde_json::json!({
        "bench": "BENCH_4 incremental query-family solving",
        "reps": reps,
        "subjects": rows,
        "aggregate": {
            "fresh_detect_s": fresh_detect,
            "incremental_detect_s": incr_detect,
            "detect_speedup": detect_speedup,
            "fresh_conflicts_plus_decisions": fresh_work,
            "incremental_conflicts_plus_decisions": incr_work,
            "work_reduction": work_reduction,
        },
        "gate": {
            "criterion": "detect_speedup >= 1.5 OR work_reduction >= 0.30",
            "pass": pass,
        },
    });
    std::fs::write(&out_path, serde_json::to_string_pretty(&doc).expect("valid json"))
        .unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("wrote {out_path}");
    assert!(pass, "acceptance gate failed: see {out_path}");
}
