//! `canary bench diff`: tolerance-gated comparison of two bench JSON
//! documents (`BENCH_*.json`), turning the bench trajectory into a CI
//! regression gate.
//!
//! The comparison walks both documents' numeric leaves by path and
//! classifies the shared ones:
//!
//! * **time** — key ends in `_s` or `_ms`. Gated, but only when at
//!   least one side exceeds a noise floor ([`DiffOptions::min_time_s`]):
//!   microsecond phases on a loaded CI core are coin flips.
//! * **memory** — key ends in `_bytes`. Gated; byte gauges are
//!   deterministic, so any drift is a real change.
//! * **work** — key ends in `work`, `conflicts`, `decisions`,
//!   `propagations` or `queries`. Gated; deterministic solver effort.
//!
//! Everything else (rates, counts of subjects, booleans) is ignored —
//! it either has its own gate in the producing bench or is derived
//! from the gated families. A leaf present on only one side is
//! reported informationally, never gated: schema growth between PRs
//! is expected.

use std::fmt::Write as _;

/// What a numeric leaf measures, from its key suffix.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MetricClass {
    /// Wall-clock seconds/milliseconds (`*_s`, `*_ms`).
    Time,
    /// Byte gauges (`*_bytes`).
    Memory,
    /// Deterministic work counters (conflicts, decisions, queries, …).
    Work,
}

impl MetricClass {
    /// Classifies a JSON key; `None` means the leaf is not compared.
    pub fn of(key: &str) -> Option<MetricClass> {
        if key.ends_with("_s") || key.ends_with("_ms") {
            Some(MetricClass::Time)
        } else if key.ends_with("_bytes") {
            Some(MetricClass::Memory)
        } else if key.ends_with("work")
            || key.ends_with("conflicts")
            || key.ends_with("decisions")
            || key.ends_with("propagations")
            || key.ends_with("queries")
        {
            Some(MetricClass::Work)
        } else {
            None
        }
    }
}

/// One compared leaf.
#[derive(Clone, Debug)]
pub struct MetricDelta {
    /// Slash-joined JSON path (`aggregate/fresh_detect_s`).
    pub path: String,
    /// What the leaf measures.
    pub class: MetricClass,
    /// Baseline value.
    pub old: f64,
    /// Current value.
    pub new: f64,
    /// `new/old - 1`; `0.0` when both sides are zero.
    pub ratio: f64,
    /// Exceeded tolerance in the slower/bigger direction.
    pub regressed: bool,
    /// Exceeded tolerance in the faster/smaller direction.
    pub improved: bool,
}

/// Comparison knobs.
#[derive(Clone, Copy, Debug)]
pub struct DiffOptions {
    /// Relative tolerance before a delta gates (default 0.05 = 5%).
    pub tolerance: f64,
    /// Time leaves where both sides are below this many seconds are
    /// skipped as noise (default 1ms).
    pub min_time_s: f64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            tolerance: 0.05,
            min_time_s: 1e-3,
        }
    }
}

/// The full comparison result.
#[derive(Clone, Debug, Default)]
pub struct BenchDiff {
    /// Every gated leaf compared, in path order.
    pub deltas: Vec<MetricDelta>,
    /// Gated leaf paths present in only one document (path, side).
    pub unmatched: Vec<(String, &'static str)>,
}

impl BenchDiff {
    /// Any leaf regressed beyond tolerance.
    pub fn has_regression(&self) -> bool {
        self.deltas.iter().any(|d| d.regressed)
    }

    /// Plain-text report, regressions first.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut ordered: Vec<&MetricDelta> = self.deltas.iter().collect();
        ordered.sort_by(|a, b| {
            (b.regressed, b.improved)
                .cmp(&(a.regressed, a.improved))
                .then_with(|| a.path.cmp(&b.path))
        });
        for d in ordered {
            let flag = if d.regressed {
                "REGRESSED"
            } else if d.improved {
                "improved"
            } else {
                "ok"
            };
            let _ = writeln!(
                out,
                "{flag:>9}  {}  {} -> {}  ({:+.1}%)",
                d.path,
                fmt_value(d.class, d.old),
                fmt_value(d.class, d.new),
                d.ratio * 100.0,
            );
        }
        for (path, side) in &self.unmatched {
            let _ = writeln!(out, "     only  {path}  ({side})");
        }
        let regressed = self.deltas.iter().filter(|d| d.regressed).count();
        let improved = self.deltas.iter().filter(|d| d.improved).count();
        let _ = writeln!(
            out,
            "bench diff: {} metric(s) compared, {regressed} regressed, {improved} improved",
            self.deltas.len(),
        );
        out
    }
}

fn fmt_value(class: MetricClass, v: f64) -> String {
    match class {
        MetricClass::Time => format!("{:.4}s", v),
        MetricClass::Memory => format!("{v:.0}B"),
        MetricClass::Work => format!("{v:.0}"),
    }
}

/// Collects every gated numeric leaf of `doc` as `(path, class, value)`,
/// in deterministic path order (the vendored `Value::Object` is a
/// sorted map).
fn numeric_leaves(doc: &serde_json::Value, prefix: &str, out: &mut Vec<(String, MetricClass, f64)>) {
    match doc {
        serde_json::Value::Object(map) => {
            for (k, v) in map {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}/{k}")
                };
                if let Some(n) = v.as_f64() {
                    if let Some(class) = MetricClass::of(k) {
                        out.push((path, class, n));
                    }
                } else {
                    numeric_leaves(v, &path, out);
                }
            }
        }
        serde_json::Value::Array(items) => {
            for (i, v) in items.iter().enumerate() {
                // Prefer a stable name over the index when the element
                // carries one, so reordered subject lists still align.
                let name = v
                    .get("subject")
                    .or_else(|| v.get("name"))
                    .and_then(|s| s.as_str())
                    .map_or_else(|| i.to_string(), str::to_string);
                numeric_leaves(v, &format!("{prefix}/{name}"), out);
            }
        }
        _ => {}
    }
}

/// Compares two bench documents. `Err` only on structurally unusable
/// input (no gated numeric leaves on either side).
pub fn diff_bench(
    old: &serde_json::Value,
    new: &serde_json::Value,
    opts: &DiffOptions,
) -> Result<BenchDiff, String> {
    let mut old_leaves = Vec::new();
    let mut new_leaves = Vec::new();
    numeric_leaves(old, "", &mut old_leaves);
    numeric_leaves(new, "", &mut new_leaves);
    if old_leaves.is_empty() && new_leaves.is_empty() {
        return Err("neither document contains comparable bench metrics".into());
    }
    let old_map: std::collections::BTreeMap<&str, (MetricClass, f64)> = old_leaves
        .iter()
        .map(|(p, c, v)| (p.as_str(), (*c, *v)))
        .collect();
    let new_map: std::collections::BTreeMap<&str, (MetricClass, f64)> = new_leaves
        .iter()
        .map(|(p, c, v)| (p.as_str(), (*c, *v)))
        .collect();
    let mut diff = BenchDiff::default();
    for (path, (class, old_v)) in &old_map {
        let Some((_, new_v)) = new_map.get(path) else {
            diff.unmatched.push(((*path).to_string(), "baseline"));
            continue;
        };
        if *class == MetricClass::Time
            && old_v.max(*new_v) < opts.min_time_s
        {
            continue;
        }
        let ratio = if *old_v == 0.0 && *new_v == 0.0 {
            0.0
        } else if *old_v == 0.0 {
            f64::INFINITY
        } else {
            new_v / old_v - 1.0
        };
        diff.deltas.push(MetricDelta {
            path: (*path).to_string(),
            class: *class,
            old: *old_v,
            new: *new_v,
            ratio,
            regressed: ratio > opts.tolerance,
            improved: ratio < -opts.tolerance,
        });
    }
    for path in new_map.keys() {
        if !old_map.contains_key(path) {
            diff.unmatched.push(((*path).to_string(), "current"));
        }
    }
    Ok(diff)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(detect_s: f64, bytes: f64, work: f64) -> serde_json::Value {
        serde_json::json!({
            "aggregate": {
                "detect_s": detect_s,
                "vfg_bytes": bytes,
                "conflicts_plus_decisions_work": work,
                "reuse_rate": 0.9,
            },
            "subjects": [
                { "subject": "fig2.cir", "total_s": detect_s * 2.0 },
            ],
        })
    }

    #[test]
    fn identical_documents_diff_clean() {
        let d = doc(1.0, 4096.0, 100.0);
        let diff = diff_bench(&d, &d, &DiffOptions::default()).unwrap();
        assert!(!diff.has_regression());
        assert!(diff.deltas.iter().all(|x| !x.improved));
        assert!(diff.unmatched.is_empty());
        // reuse_rate is not a gated class and must not be compared.
        assert!(diff.deltas.iter().all(|d| d.path != "aggregate/reuse_rate"));
    }

    #[test]
    fn detect_time_regression_flags() {
        let old = doc(1.0, 4096.0, 100.0);
        let new = doc(1.2, 4096.0, 100.0);
        let diff = diff_bench(&old, &new, &DiffOptions::default()).unwrap();
        assert!(diff.has_regression());
        let d = diff
            .deltas
            .iter()
            .find(|d| d.path == "aggregate/detect_s")
            .unwrap();
        assert!(d.regressed);
        assert!((d.ratio - 0.2).abs() < 1e-9);
    }

    #[test]
    fn sub_floor_times_are_noise() {
        let old = doc(2e-4, 4096.0, 100.0);
        let new = doc(4e-4, 4096.0, 100.0); // 2x, but every time leaf under 1ms
        let diff = diff_bench(&old, &new, &DiffOptions::default()).unwrap();
        assert!(!diff.has_regression());
    }

    #[test]
    fn work_and_memory_regressions_gate() {
        let old = doc(1.0, 4096.0, 100.0);
        let new = doc(1.0, 8192.0, 120.0);
        let diff = diff_bench(&old, &new, &DiffOptions::default()).unwrap();
        let flagged: Vec<&str> = diff
            .deltas
            .iter()
            .filter(|d| d.regressed)
            .map(|d| d.path.as_str())
            .collect();
        assert!(flagged.contains(&"aggregate/vfg_bytes"));
        assert!(flagged.contains(&"aggregate/conflicts_plus_decisions_work"));
    }

    #[test]
    fn improvements_do_not_gate() {
        let old = doc(2.0, 8192.0, 200.0);
        let new = doc(1.0, 4096.0, 100.0);
        let diff = diff_bench(&old, &new, &DiffOptions::default()).unwrap();
        assert!(!diff.has_regression());
        assert!(diff.deltas.iter().any(|d| d.improved));
    }

    #[test]
    fn schema_growth_is_informational() {
        let old = doc(1.0, 4096.0, 100.0);
        let mut new = doc(1.0, 4096.0, 100.0);
        if let serde_json::Value::Object(top) = &mut new {
            if let Some(serde_json::Value::Object(agg)) = top.get_mut("aggregate") {
                agg.insert("new_phase_s".into(), serde_json::json!(0.5));
            }
        }
        let diff = diff_bench(&old, &new, &DiffOptions::default()).unwrap();
        assert!(!diff.has_regression());
        assert!(diff
            .unmatched
            .iter()
            .any(|(p, side)| p == "aggregate/new_phase_s" && *side == "current"));
    }

    #[test]
    fn unusable_input_errors() {
        let d = serde_json::json!({"hello": "world"});
        assert!(diff_bench(&d, &d, &DiffOptions::default()).is_err());
    }

    #[test]
    fn render_mentions_regression() {
        let old = doc(1.0, 4096.0, 100.0);
        let new = doc(1.5, 4096.0, 100.0);
        let diff = diff_bench(&old, &new, &DiffOptions::default()).unwrap();
        let text = diff.render();
        assert!(text.contains("REGRESSED"));
        assert!(text.contains("aggregate/detect_s"));
    }
}
