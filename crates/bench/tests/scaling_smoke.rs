//! Runnable copy of the thread-scaling smoke check (the criterion
//! bench file carries the same assertion, but `harness = false` targets
//! never execute `#[test]`s under `cargo test`).

#[test]
fn front_end_thread_sweep_stays_within_budget() {
    canary_bench::assert_thread_scaling_sane();
}

#[test]
fn front_end_metrics_expose_scheduling_shape() {
    use canary_bench::measure_front_end;
    use canary_workloads::{generate, WorkloadSpec};
    let w = generate(&WorkloadSpec::small(0xF168));
    let serial = measure_front_end(&w, 1);
    let par = measure_front_end(&w, 4);
    assert_eq!(serial.worker_threads, 1);
    assert_eq!(par.worker_threads, 4);
    assert!(serial.dataflow_phase.tasks > 0, "Alg. 1 ran at least one task");
    assert!(par.interference_phase.tasks > 0, "Alg. 2 sharded at least one item");
    // Determinism: worker count must not move a single structural fact.
    assert_eq!(serial.dataflow_phase.tasks, par.dataflow_phase.tasks);
    assert_eq!(serial.interference_phase.tasks, par.interference_phase.tasks);
    assert_eq!(serial.vfg_nodes, par.vfg_nodes);
    assert_eq!(serial.vfg_edges, par.vfg_edges);
    assert_eq!(serial.interference_edges, par.interference_edges);
    assert_eq!(serial.term_count, par.term_count);
}
