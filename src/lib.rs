//! Facade crate re-exporting the Canary workspace.
#![warn(missing_docs)]
pub use canary_core::*;
