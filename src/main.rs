//! The `canary` command-line interface.
//!
//! ```text
//! canary <program.cir> [options]
//! canary diff <baseline.sarif> <current.sarif>
//! canary bench diff <old.json> <new.json> [--tolerance PCT]
//! canary why <program.cir> <fingerprint> [options]
//! canary why-not <program.cir> <source_label> <sink_label> [options]
//!
//! options:
//!   --checkers LIST       comma list of uaf,doublefree,nullderef,leak,
//!                         doublelock,conflictlock (default: all six)
//!   --inter-thread-only   report only witnesses spanning threads
//!   --format FMT          stdout format: text (default), json or sarif
//!   --json                shorthand for --format json
//!   --json-out FILE       also write the JSON document to FILE
//!   --sarif-out FILE      also write the SARIF 2.1.0 document to FILE
//!   --baseline FILE       classify findings against a baseline SARIF
//!                         run as new / persisting / fixed; the exit
//!                         code then reflects *new* findings only
//!   --no-mhp              disable may-happen-in-parallel pruning
//!   --no-sync             disable lock/wait constraint generation
//!   --no-prefilter        disable the semi-decision prefilter
//!   --memory-model MODEL  sc (default), tso or pso
//!   --threads N           front-end worker threads (default 1; output
//!                         is byte-identical for any value)
//!   --solver-threads N    parallel SMT query workers (default 1)
//!   --solver-strategy S   fresh (one solver per query) or incremental
//!                         (query-family solving with UNSAT-core
//!                         subsumption and memoization; the default,
//!                         also settable via CANARY_SOLVER_STRATEGY)
//!   --dispatch D          static (contiguous per-worker family chunks)
//!                         or worksteal (sharded work-stealing family
//!                         scheduler; the default, also settable via
//!                         CANARY_DISPATCH) — output is byte-identical
//!                         either way
//!   --shards N            query-family shards for the work-stealing
//!                         dispatcher (default 0 = auto)
//!   --cube-split N        escalate family members that blow the
//!                         conflict budget to cube-and-conquer over N
//!                         branch atoms (default 0 = off)
//!   --memory-budget-mb N  spill cold function summaries to an on-disk
//!                         store, keeping at most N MiB resident
//!   --unroll K            loop unrolling depth (default 2)
//!   --context-depth N     clone-based context sensitivity depth
//!                         (default 0 = context-insensitive)
//!   --max-paths N         candidate path budget per source
//!   --max-path-len N      candidate path length budget
//!   --tool NAME           canary (default), or the saber / fsam
//!                         unguarded baselines
//!   --explain             print a minimized unsat core for each
//!                         refuted candidate
//!   --verify-witnesses    concretely replay each report's witness
//!                         schedule with the oracle interpreter
//!   --trace-out FILE      write a Chrome trace-event profile (open in
//!                         Perfetto or chrome://tracing)
//!   --metrics-out FILE    write the run-health metrics registry as
//!                         OpenMetrics text (scrape-ready)
//!   --audit-out FILE      write the per-candidate audit log as JSONL
//!                         (one disposition certificate per line; see
//!                         docs/audit_schema.md) — byte-identical
//!                         across every scheduling and strategy knob
//!   --slow-query-ms N     log any SMT query at or over N ms to stderr
//!                         with its full QueryProfile attribution
//!   --log LEVEL           off, summary or debug; overrides CANARY_LOG
//!   --stats               print per-phase metrics, solver totals and
//!                         the hottest queries/functions
//! ```
//!
//! The `diff` subcommand compares two SARIF files by their stable
//! `canary/v1` fingerprints and exits 0 (no new findings), 1 (new
//! findings) or 2 (error).
//!
//! The `bench diff` subcommand compares two bench JSON documents
//! (`BENCH_*.json`) leaf-by-leaf with a relative tolerance (default
//! 5%) and exits 0 (within tolerance), 1 (a time/memory/work metric
//! regressed) or 2 (error) — the CI regression gate over the bench
//! trajectory. See `docs/observability.md`.
//!
//! The `why` subcommand re-analyzes a program and explains one emitted
//! finding by its stable fingerprint (exit 0 found, 1 not found, 2 on
//! error); `why-not` explains why a source/sink pair was *not*
//! reported, printing the audit layer's disposition certificates for
//! the pair — MHP facts, lock-sharpening witnesses, prefilter folds,
//! UNSAT conjuncts, memo origins (same exit conventions).
//!
//! The `CANARY_LOG` environment variable (`summary` or `debug`) turns
//! on human-readable progress lines on stderr; stdout stays reserved
//! for results. `--log` overrides it per invocation.

// The vendored `json!` macro expands recursively per key; the enriched
// `--json` metrics block overflows the default limit of 128.
#![recursion_limit = "512"]

use std::process::ExitCode;

use canary_core::{Canary, CanaryConfig};
use canary_detect::{BugKind, MemoryModel};
use canary_interference::InterferenceOptions;
use canary_ir::ParseOptions;
use canary_smt::{SolverOptions, SolverStrategy};

/// Rows shown in the `--stats` / `--json` hottest-queries and
/// hottest-functions tables.
const TOP_K: usize = 5;

fn usage() -> ! {
    eprintln!(
        "usage: canary <program.cir> \
         [--checkers uaf,doublefree,nullderef,leak,doublelock,conflictlock] \
         [--inter-thread-only] [--format text|json|sarif] [--json] \
         [--json-out FILE] [--sarif-out FILE] [--baseline FILE] \
         [--no-mhp] [--no-sync] [--no-prefilter] \
         [--memory-model sc|tso|pso] [--threads N] [--solver-threads N] \
         [--solver-strategy fresh|incremental] [--dispatch static|worksteal] \
         [--shards N] [--cube-split N] [--memory-budget-mb N] [--unroll K] \
         [--context-depth N] [--max-paths N] [--max-path-len N] \
         [--tool canary|saber|fsam] [--explain] [--verify-witnesses] \
         [--trace-out FILE] [--metrics-out FILE] [--audit-out FILE] \
         [--slow-query-ms N] [--log off|summary|debug] [--stats]\n\
         \x20      canary diff <baseline.sarif> <current.sarif>\n\
         \x20      canary bench diff <old.json> <new.json> [--tolerance PCT]\n\
         \x20      canary why <program.cir> <fingerprint> [options]\n\
         \x20      canary why-not <program.cir> <source_label> <sink_label> [options]"
    );
    std::process::exit(2);
}

/// What the main stdout stream carries.
#[derive(Copy, Clone, PartialEq, Eq)]
enum OutputFormat {
    Text,
    Json,
    Sarif,
}

enum Tool {
    Canary,
    Saber,
    Fsam,
}

struct Cli {
    file: String,
    config: CanaryConfig,
    format: OutputFormat,
    stats: bool,
    tool: Tool,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    audit_out: Option<String>,
    json_out: Option<String>,
    sarif_out: Option<String>,
    baseline: Option<String>,
}

fn parse_args(args: &[String]) -> Cli {
    let mut file: Option<String> = None;
    let mut config = CanaryConfig::default();
    let mut format = OutputFormat::Text;
    let mut stats = false;
    let mut tool = Tool::Canary;
    let mut trace_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut audit_out: Option<String> = None;
    let mut json_out: Option<String> = None;
    let mut sarif_out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--checkers" => {
                i += 1;
                let Some(list) = args.get(i) else { usage() };
                config.checkers = list
                    .split(',')
                    .map(|c| match c.trim() {
                        "uaf" | "use-after-free" => BugKind::UseAfterFree,
                        "doublefree" | "double-free" | "df" => BugKind::DoubleFree,
                        "nullderef" | "null" => BugKind::NullDeref,
                        "leak" | "taint" => BugKind::DataLeak,
                        "doublelock" | "double-lock" | "dl" => BugKind::DoubleLock,
                        "conflictlock" | "conflict-lock" | "deadlock" => {
                            BugKind::ConflictLock
                        }
                        other => {
                            eprintln!("unknown checker `{other}`");
                            usage()
                        }
                    })
                    .collect();
            }
            "--inter-thread-only" => config.detect.inter_thread_only = true,
            "--explain" => config.detect.explain_refutations = true,
            "--verify-witnesses" => config.verify_witnesses = true,
            "--json" => format = OutputFormat::Json,
            "--format" => {
                i += 1;
                let Some(f) = args.get(i) else { usage() };
                format = match f.as_str() {
                    "text" => OutputFormat::Text,
                    "json" => OutputFormat::Json,
                    "sarif" => OutputFormat::Sarif,
                    other => {
                        eprintln!("unknown format `{other}` (text|json|sarif)");
                        usage()
                    }
                };
            }
            "--json-out" => {
                i += 1;
                let Some(path) = args.get(i) else { usage() };
                json_out = Some(path.clone());
            }
            "--sarif-out" => {
                i += 1;
                let Some(path) = args.get(i) else { usage() };
                sarif_out = Some(path.clone());
            }
            "--baseline" => {
                i += 1;
                let Some(path) = args.get(i) else { usage() };
                baseline = Some(path.clone());
            }
            "--stats" => stats = true,
            "--no-mhp" => {
                config.interference = InterferenceOptions {
                    use_mhp: false,
                    ..config.interference
                };
            }
            "--no-sync" => config.detect.sync_constraints = false,
            "--no-prefilter" => {
                config.detect.solver = SolverOptions {
                    prefilter: false,
                    ..config.detect.solver
                };
            }
            "--memory-model" => {
                i += 1;
                let Some(m) = args.get(i) else { usage() };
                config.detect.memory_model = match m.as_str() {
                    "sc" => MemoryModel::Sc,
                    "tso" => MemoryModel::Tso,
                    "pso" => MemoryModel::Pso,
                    other => {
                        eprintln!("unknown memory model `{other}`");
                        usage()
                    }
                };
            }
            "--threads" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|s| s.parse().ok()) else {
                    usage()
                };
                if n < 1 {
                    eprintln!("--threads must be at least 1");
                    usage()
                }
                config.threads = n;
            }
            "--solver-threads" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|s| s.parse().ok()) else {
                    usage()
                };
                config.detect.solver = SolverOptions {
                    num_threads: n,
                    ..config.detect.solver
                };
            }
            "--solver-strategy" => {
                i += 1;
                let Some(s) = args.get(i) else { usage() };
                let Some(strategy) = SolverStrategy::parse(s) else {
                    eprintln!("unknown solver strategy `{s}` (fresh|incremental)");
                    usage()
                };
                config.detect.solver = SolverOptions {
                    strategy,
                    ..config.detect.solver
                };
            }
            "--dispatch" => {
                i += 1;
                let Some(d) = args.get(i) else { usage() };
                let Some(dispatch) = canary_smt::Dispatch::parse(d) else {
                    eprintln!("unknown dispatch `{d}` (static|worksteal)");
                    usage()
                };
                config.detect.solver = SolverOptions {
                    dispatch,
                    ..config.detect.solver
                };
            }
            "--shards" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|s| s.parse().ok()) else {
                    usage()
                };
                config.detect.solver = SolverOptions {
                    shards: n,
                    ..config.detect.solver
                };
            }
            "--cube-split" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|s| s.parse().ok()) else {
                    usage()
                };
                config.detect.solver = SolverOptions {
                    cube_split: n,
                    ..config.detect.solver
                };
            }
            "--memory-budget-mb" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|s| s.parse().ok()) else {
                    usage()
                };
                config.memory_budget_mb = Some(n);
            }
            "--tool" => {
                i += 1;
                let Some(t) = args.get(i) else { usage() };
                tool = match t.as_str() {
                    "canary" => Tool::Canary,
                    "saber" => Tool::Saber,
                    "fsam" => Tool::Fsam,
                    other => {
                        eprintln!("unknown tool `{other}`");
                        usage()
                    }
                };
            }
            "--max-paths" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|s| s.parse().ok()) else {
                    usage()
                };
                config.detect.limits.max_paths = n;
            }
            "--max-path-len" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|s| s.parse().ok()) else {
                    usage()
                };
                config.detect.limits.max_len = n;
            }
            "--context-depth" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|s| s.parse().ok()) else {
                    usage()
                };
                config.context_depth = n;
            }
            "--trace-out" => {
                i += 1;
                let Some(path) = args.get(i) else { usage() };
                trace_out = Some(path.clone());
            }
            "--metrics-out" => {
                i += 1;
                let Some(path) = args.get(i) else { usage() };
                metrics_out = Some(path.clone());
            }
            "--audit-out" => {
                i += 1;
                let Some(path) = args.get(i) else { usage() };
                audit_out = Some(path.clone());
            }
            "--slow-query-ms" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|s| s.parse().ok()) else {
                    usage()
                };
                config.detect.slow_query_ms = Some(n);
            }
            "--log" => {
                i += 1;
                let Some(l) = args.get(i) else { usage() };
                let Some(level) = canary_trace::parse_log_level_strict(l) else {
                    eprintln!("unknown log level `{l}` (off|summary|debug)");
                    usage()
                };
                canary_trace::set_log_level(level);
            }
            "--unroll" => {
                i += 1;
                let Some(k) = args.get(i).and_then(|s| s.parse().ok()) else {
                    usage()
                };
                config.parse = ParseOptions { loop_unroll: k };
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag `{flag}`");
                usage()
            }
            path => {
                if file.replace(path.to_string()).is_some() {
                    usage()
                }
            }
        }
        i += 1;
    }
    let Some(file) = file else { usage() };
    Cli {
        file,
        config,
        format,
        stats,
        tool,
        trace_out,
        metrics_out,
        audit_out,
        json_out,
        sarif_out,
        baseline,
    }
}

/// Writes an output artifact, reporting unwritable paths as a clean
/// CLI error (exit 2) instead of a panic.
fn write_output(path: &str, content: &str) -> Result<(), ExitCode> {
    std::fs::write(path, content).map_err(|e| {
        eprintln!("canary: cannot write {path}: {e}");
        ExitCode::from(2)
    })
}

/// Reads and parses a SARIF file.
fn read_sarif(path: &str) -> Result<serde_json::Value, ExitCode> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        eprintln!("canary: cannot read {path}: {e}");
        ExitCode::from(2)
    })?;
    serde_json::from_str(&text).map_err(|e| {
        eprintln!("canary: {path}: not valid JSON: {e:?}");
        ExitCode::from(2)
    })
}

/// The `canary diff <baseline.sarif> <current.sarif>` subcommand:
/// exits 0 when the current run adds no findings over the baseline,
/// 1 when it does, 2 on any error.
fn run_diff(args: &[String]) -> ExitCode {
    let [base_path, cur_path] = args else {
        eprintln!("usage: canary diff <baseline.sarif> <current.sarif>");
        return ExitCode::from(2);
    };
    let (base, cur) = match (read_sarif(base_path), read_sarif(cur_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => return e,
    };
    match canary_report::diff_sarif(&base, &cur) {
        Ok(diff) => {
            print!("{}", diff.render());
            if diff.has_new() {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("canary: diff: {e}");
            ExitCode::from(2)
        }
    }
}

/// The `canary bench diff <old.json> <new.json> [--tolerance PCT]`
/// subcommand: compares two bench JSON documents leaf-by-leaf (see
/// `canary_bench::diff`) and exits 0 when every time/memory/work
/// metric is within tolerance, 1 on any regression, 2 on error.
fn run_bench_diff(args: &[String]) -> ExitCode {
    let mut opts = canary_bench::diff::DiffOptions::default();
    let mut paths: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tolerance" => {
                i += 1;
                let pct: Option<f64> = args.get(i).and_then(|s| s.parse().ok());
                let Some(pct) = pct.filter(|p| *p >= 0.0) else {
                    eprintln!("--tolerance takes a non-negative percentage");
                    return ExitCode::from(2);
                };
                opts.tolerance = pct / 100.0;
            }
            _ => paths.push(&args[i]),
        }
        i += 1;
    }
    let [old_path, new_path] = paths[..] else {
        eprintln!("usage: canary bench diff <old.json> <new.json> [--tolerance PCT]");
        return ExitCode::from(2);
    };
    let (old, new) = match (read_sarif(old_path), read_sarif(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => return e,
    };
    match canary_bench::diff::diff_bench(&old, &new, &opts) {
        Ok(diff) => {
            print!("{}", diff.render());
            if diff.has_regression() {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("canary: bench diff: {e}");
            ExitCode::from(2)
        }
    }
}

/// Runs a baseline tool and prints its unguarded findings.
fn run_baseline(prog: &canary_ir::Program, tool: &Tool) -> ExitCode {
    use canary_baselines::{fsam, saber, Budgeted, Deadline};
    let result = match tool {
        Tool::Saber => saber::check_uaf(prog, Deadline::none()),
        Tool::Fsam => fsam::check_uaf(prog, Deadline::none()),
        Tool::Canary => unreachable!("caller dispatches"),
    };
    match result {
        Budgeted::Done(reports) => {
            for r in &reports {
                println!(
                    "[unguarded] use-after-free: {} reaches {}",
                    canary_ir::render_inst(prog, r.source),
                    canary_ir::render_inst(prog, r.sink),
                );
            }
            if reports.is_empty() {
                println!("no findings");
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Budgeted::TimedOut => {
            eprintln!("baseline timed out");
            ExitCode::from(3)
        }
    }
}

/// Parses a label operand: either a bare statement index (`12`) or the
/// rendered form the reports print (`l12`).
fn parse_label(s: &str) -> Option<canary_ir::Label> {
    let digits = s.strip_prefix('l').unwrap_or(s);
    digits.parse::<u32>().ok().map(canary_ir::Label)
}

/// Shared front half of the `why` / `why-not` subcommands: `operands`
/// are the arguments after the verb-specific positionals, forwarded
/// through the regular option parser with the program path prepended
/// (so `--checkers`, `--solver-strategy`, ... all apply).
fn analyze_for_audit(
    file: &str,
    operands: &[String],
) -> Result<(canary_ir::Program, canary_core::AnalysisOutcome), ExitCode> {
    let mut forwarded = vec![file.to_string()];
    forwarded.extend_from_slice(operands);
    let cli = parse_args(&forwarded);
    let src = match std::fs::read_to_string(&cli.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("canary: cannot read {}: {e}", cli.file);
            return Err(ExitCode::from(2));
        }
    };
    let prog = match canary_ir::parse_with(&src, &cli.config.parse) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("canary: {}: {e}", cli.file);
            return Err(ExitCode::from(2));
        }
    };
    if let Err(e) = prog.validate() {
        eprintln!("canary: {}: invalid program: {e}", cli.file);
        return Err(ExitCode::from(2));
    }
    let outcome = Canary::with_config(cli.config.clone()).analyze(&prog);
    Ok((prog, outcome))
}

/// `canary why <program.cir> <fingerprint>`: re-analyzes the program
/// and explains one emitted finding by its stable fingerprint — the
/// finding itself plus its audit trail (the winning record and any
/// duplicates it absorbed). Exits 0 when found, 1 when no report
/// carries the fingerprint, 2 on malformed input.
fn run_why(args: &[String]) -> ExitCode {
    let (Some(file), Some(fp_str)) = (args.first(), args.get(1)) else {
        eprintln!("usage: canary why <program.cir> <fingerprint> [options]");
        return ExitCode::from(2);
    };
    let Some(fp) = canary_detect::Fingerprint::parse(fp_str) else {
        eprintln!("canary why: not a fingerprint (expected 16 hex digits): {fp_str}");
        return ExitCode::from(2);
    };
    let (prog, outcome) = match analyze_for_audit(file, &args[2..]) {
        Ok(t) => t,
        Err(e) => return e,
    };
    let prog = outcome.analyzed_program.as_ref().unwrap_or(&prog);
    let mut found = false;
    for r in &outcome.reports {
        if r.fingerprint(prog) != fp {
            continue;
        }
        found = true;
        println!(
            "{fp} [{}] {} -> {}",
            r.kind,
            canary_ir::render_inst(prog, r.source),
            canary_ir::render_inst(prog, r.sink),
        );
    }
    for rec in outcome.metrics.audit.records() {
        let relevant = match &rec.disposition {
            Some(canary_detect::Disposition::Reported { fingerprint }) => *fingerprint == fp,
            Some(canary_detect::Disposition::Deduped { winner }) => *winner == fp,
            _ => false,
        };
        if relevant {
            println!("{}", rec.describe());
        }
    }
    if found {
        ExitCode::SUCCESS
    } else {
        eprintln!("canary why: no report with fingerprint {fp} in {file}");
        ExitCode::from(1)
    }
}

/// `canary why-not <program.cir> <source_label> <sink_label>`:
/// re-analyzes the program and prints every audit certificate recorded
/// for the pair — MHP facts, lock-sharpening killing stores, prefilter
/// folds, UNSAT conjuncts, memo origins — or, for a reported pair, the
/// reported/deduped trail. Exits 0 when the pair has records, 1 when
/// it was never enumerated, 2 on malformed input.
fn run_why_not(args: &[String]) -> ExitCode {
    let (Some(file), Some(src_s), Some(sink_s)) = (args.first(), args.get(1), args.get(2))
    else {
        eprintln!("usage: canary why-not <program.cir> <source_label> <sink_label> [options]");
        return ExitCode::from(2);
    };
    let (Some(src_label), Some(sink_label)) = (parse_label(src_s), parse_label(sink_s)) else {
        eprintln!(
            "canary why-not: labels are bare statement indices (`12`) or the \
             rendered form (`l12`); got {src_s} / {sink_s}"
        );
        return ExitCode::from(2);
    };
    let (_prog, outcome) = match analyze_for_audit(file, &args[3..]) {
        Ok(t) => t,
        Err(e) => return e,
    };
    let records = outcome.metrics.audit.find_pair(src_label, sink_label);
    if records.is_empty() {
        println!(
            "no candidate {src_label} -> {sink_label}: the pair was never \
             enumerated — no value-flow path connects the labels (or they \
             name no source/sink the enabled checkers consider)"
        );
        return ExitCode::from(1);
    }
    for rec in records {
        println!("{}", rec.describe());
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("diff") {
        return run_diff(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("bench") {
        if args.get(1).map(String::as_str) == Some("diff") {
            return run_bench_diff(&args[2..]);
        }
        eprintln!("usage: canary bench diff <old.json> <new.json> [--tolerance PCT]");
        return ExitCode::from(2);
    }
    if args.first().map(String::as_str) == Some("why") {
        return run_why(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("why-not") {
        return run_why_not(&args[1..]);
    }
    let cli = parse_args(&args);
    let src = match std::fs::read_to_string(&cli.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("canary: cannot read {}: {e}", cli.file);
            return ExitCode::from(2);
        }
    };
    let prog = match canary_ir::parse_with(&src, &cli.config.parse) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("canary: {}: {e}", cli.file);
            return ExitCode::from(2);
        }
    };
    if let Err(e) = prog.validate() {
        eprintln!("canary: {}: invalid program: {e}", cli.file);
        return ExitCode::from(2);
    }
    if !matches!(cli.tool, Tool::Canary) {
        return run_baseline(&prog, &cli.tool);
    }
    let tracer = if cli.trace_out.is_some() {
        canary_trace::Tracer::enabled()
    } else {
        canary_trace::Tracer::disabled()
    };
    let strategy = cli.config.detect.solver.strategy;
    let outcome = Canary::with_config(cli.config.clone()).analyze_traced(&prog, &tracer);
    if let Some(path) = &cli.trace_out {
        if let Err(e) = write_output(path, &tracer.export_chrome()) {
            return e;
        }
    }
    if let Some(path) = &cli.metrics_out {
        let registry = outcome.metrics.to_registry();
        if let Err(e) = write_output(path, &registry.to_openmetrics()) {
            return e;
        }
    }
    if let Some(path) = &cli.audit_out {
        if let Err(e) = write_output(path, &outcome.metrics.audit.to_jsonl()) {
            return e;
        }
    }
    let prog = outcome.analyzed_program.as_ref().unwrap_or(&prog);
    let manifest = run_manifest(&cli, &src, &cli.config, strategy.as_str(), &outcome.metrics);
    let needs_sarif = cli.sarif_out.is_some()
        || cli.baseline.is_some()
        || cli.format == OutputFormat::Sarif;
    let sarif_doc = needs_sarif
        .then(|| canary_report::sarif_document(prog, &outcome.reports, &manifest));
    if let (Some(path), Some(doc)) = (&cli.sarif_out, &sarif_doc) {
        let text = serde_json::to_string_pretty(doc).expect("valid json");
        if let Err(e) = write_output(path, &text) {
            return e;
        }
    }
    if let Some(path) = &cli.json_out {
        let doc = json_document(&cli, prog, &outcome, strategy.as_str());
        let text = serde_json::to_string_pretty(&doc).expect("valid json");
        if let Err(e) = write_output(path, &text) {
            return e;
        }
    }
    if cli.format == OutputFormat::Sarif {
        let doc = sarif_doc.as_ref().expect("built above");
        println!("{}", serde_json::to_string_pretty(doc).expect("valid json"));
    } else if cli.format == OutputFormat::Json {
        let doc = json_document(&cli, prog, &outcome, strategy.as_str());
        println!("{}", serde_json::to_string_pretty(&doc).expect("valid json"));
    } else {
        print_text_output(&cli, prog, &outcome, strategy.as_str());
    }
    if let Some(path) = &cli.baseline {
        let base = match read_sarif(path) {
            Ok(b) => b,
            Err(e) => return e,
        };
        let cur = sarif_doc.as_ref().expect("built above");
        return match canary_report::diff_sarif(&base, cur) {
            Ok(diff) => {
                // In json/sarif modes stdout carries a document; keep
                // the classification on stderr there.
                if cli.format == OutputFormat::Text {
                    print!("{}", diff.render());
                } else {
                    eprint!("{}", diff.render());
                }
                if diff.has_new() {
                    ExitCode::from(1)
                } else {
                    ExitCode::SUCCESS
                }
            }
            Err(e) => {
                eprintln!("canary: baseline: {e}");
                ExitCode::from(2)
            }
        };
    }
    if outcome.reports.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// The run manifest recorded in the SARIF invocation block: the full
/// configuration (sorted knobs), the corpus hash, and the phase wall
/// The CLI spelling of a memory model, as accepted by `--memory-model`.
fn model_name(model: MemoryModel) -> &'static str {
    match model {
        MemoryModel::Sc => "sc",
        MemoryModel::Tso => "tso",
        MemoryModel::Pso => "pso",
    }
}

/// times (nondeterministic; quarantined under `properties.timings`).
fn run_manifest(
    cli: &Cli,
    src: &str,
    config: &CanaryConfig,
    strategy: &str,
    m: &canary_core::Metrics,
) -> canary_report::RunManifest {
    let checkers: Vec<String> = config.checkers.iter().map(|k| k.to_string()).collect();
    let memory_model = model_name(config.detect.memory_model);
    canary_report::RunManifest {
        file: cli.file.clone(),
        corpus_hash: canary_report::content_hash(src.as_bytes()),
        strategy: strategy.to_string(),
        threads: config.threads,
        canary_version: env!("CARGO_PKG_VERSION").to_string(),
        rustc_version: env!("CANARY_RUSTC_VERSION").to_string(),
        config: vec![
            ("checkers".into(), checkers.join(",")),
            ("context_depth".into(), config.context_depth.to_string()),
            (
                "cube_split".into(),
                config.detect.solver.cube_split.to_string(),
            ),
            (
                "dispatch".into(),
                config.detect.solver.dispatch.as_str().to_string(),
            ),
            (
                "inter_thread_only".into(),
                config.detect.inter_thread_only.to_string(),
            ),
            ("loop_unroll".into(), config.parse.loop_unroll.to_string()),
            (
                "memory_budget_mb".into(),
                config
                    .memory_budget_mb
                    .map(|mb| mb.to_string())
                    .unwrap_or_else(|| "none".into()),
            ),
            ("memory_model".into(), memory_model.to_string()),
            (
                "prefilter".into(),
                config.detect.solver.prefilter.to_string(),
            ),
            ("shards".into(), config.detect.solver.shards.to_string()),
            (
                "solver_threads".into(),
                config.detect.solver.num_threads.to_string(),
            ),
            (
                "sync_constraints".into(),
                config.detect.sync_constraints.to_string(),
            ),
            (
                "use_mhp".into(),
                config.interference.use_mhp.to_string(),
            ),
            (
                "verify_witnesses".into(),
                config.verify_witnesses.to_string(),
            ),
        ],
        timings_ms: vec![
            ("dataflow".into(), m.t_dataflow.as_secs_f64() * 1e3),
            (
                "interference".into(),
                m.t_interference.as_secs_f64() * 1e3,
            ),
            ("detect".into(), m.t_detect.as_secs_f64() * 1e3),
        ],
    }
}

/// Builds the versioned `--json` document (see `docs/report_schema.md`
/// for the schema; `schema_version` gates consumers).
fn json_document(
    cli: &Cli,
    prog: &canary_ir::Program,
    outcome: &canary_core::AnalysisOutcome,
    strategy: &str,
) -> serde_json::Value {
    {
        let reports: Vec<serde_json::Value> = outcome
            .reports
            .iter()
            .enumerate()
            .map(|(i, r)| {
                serde_json::json!({
                    "witness_replay_confirmed": outcome
                        .witness_replays
                        .get(i)
                        .map(|replay| replay.confirmed()),
                    "fingerprint": r.fingerprint(prog).to_string(),
                    "provenance": r.provenance.as_ref()
                        .map(|p| p.to_json())
                        .unwrap_or(serde_json::Value::Null),
                    "kind": r.kind.to_string(),
                    "source": { "label": r.source.0,
                                 "stmt": canary_ir::render_inst(prog, r.source),
                                 "function": prog.func(prog.func_of(r.source)).name },
                    "sink": { "label": r.sink.0,
                               "stmt": canary_ir::render_inst(prog, r.sink),
                               "function": prog.func(prog.func_of(r.sink)).name },
                    "inter_thread": r.inter_thread,
                    "path": r.path,
                    "constraint": r.constraint,
                    "witness_schedule": r.schedule.iter().map(|l| l.0).collect::<Vec<u32>>(),
                })
            })
            .collect();
        let m = &outcome.metrics;
        let hot_queries: Vec<serde_json::Value> = m
            .hottest_queries(TOP_K)
            .iter()
            .map(|p| {
                serde_json::json!({
                    "kind": p.kind.to_string(),
                    "source": p.source.0,
                    "sink": p.sink.0,
                    "path_len": p.path_len,
                    "bool_atoms": p.bool_atoms,
                    "order_atoms": p.order_atoms,
                    "sat": p.sat,
                    "prefiltered": p.prefiltered,
                    "memo_hit": p.memo_hit,
                    "core_subsumed": p.core_subsumed,
                    "incremental": p.incremental,
                    "decisions": p.decisions,
                    "conflicts": p.conflicts,
                    "propagations": p.propagations,
                    "learned": p.learned,
                    "theory_lemmas": p.theory_lemmas,
                    "wall_ms": p.wall.as_secs_f64() * 1e3,
                })
            })
            .collect();
        let hot_functions: Vec<serde_json::Value> = m
            .hottest_functions(TOP_K)
            .iter()
            .map(|p| {
                serde_json::json!({
                    "function": p.name,
                    "stmt_visits": p.stmt_visits,
                    "blocks": p.blocks,
                    "summary_cells": p.summary_cells,
                    "stores": p.stores,
                    "loads": p.loads,
                    "wall_ms": p.wall.as_secs_f64() * 1e3,
                })
            })
            .collect();
        let audit = m.audit.reconcile().unwrap_or_default();
        let doc = serde_json::json!({
            "schema_version": 3,
            "canary_version": env!("CARGO_PKG_VERSION"),
            "rustc_version": env!("CANARY_RUSTC_VERSION"),
            "file": cli.file,
            "reports": reports,
            "metrics": {
                "registry": m.to_registry().to_json(),
                "statements": m.stmt_count,
                "threads": m.thread_count,
                "memory_model": model_name(cli.config.detect.memory_model),
                "vfg_nodes": m.vfg_nodes,
                "vfg_edges": m.vfg_edges,
                "interference_edges": m.interference_edges,
                "mhp_lock_pruned": m.mhp_lock_pruned,
                "escaped_objects": m.escaped_objects,
                "candidate_paths": m.detect.candidate_paths,
                "reports_deduped": m.reports_deduped,
                "smt_queries": m.detect.queries,
                "worker_threads": m.worker_threads,
                "dataflow_tasks": m.dataflow_phase.tasks,
                "interference_tasks": m.interference_phase.tasks,
                "time_dataflow_ms": m.t_dataflow.as_secs_f64() * 1e3,
                "time_interference_ms": m.t_interference.as_secs_f64() * 1e3,
                "time_detect_ms": m.t_detect.as_secs_f64() * 1e3,
                "solver": {
                    "strategy": strategy,
                    "dispatch": cli.config.detect.solver.dispatch.as_str(),
                    "shards": cli.config.detect.solver.shards,
                    "cube_split": cli.config.detect.solver.cube_split,
                    "cube_escalated": m.detect.cube_escalated,
                    "shard_epochs": m.detect.epochs,
                    "prefiltered": m.detect.prefiltered,
                    "decisions": m.detect.decisions,
                    "conflicts": m.detect.conflicts,
                    "propagations": m.detect.propagations,
                    "learned": m.detect.learned,
                    "theory_lemmas": m.detect.theory_lemmas,
                    "families": m.detect.families,
                    "memo_hits": m.detect.memo_hits,
                    "core_subsumed": m.detect.core_subsumed,
                    "incremental_queries": m.detect.incremental,
                    "clauses_retained": m.detect.clauses_retained,
                    "reuse_rate": if m.detect.queries > 0 {
                        (m.detect.memo_hits + m.detect.core_subsumed) as f64
                            / m.detect.queries as f64
                    } else {
                        0.0
                    },
                },
                "spill": {
                    "budget_bytes": m.spill.budget_bytes,
                    "bytes_written": m.spill.bytes_written,
                    "entries": m.spill.entries,
                    "evictions": m.spill.evictions,
                    "reloads": m.spill.reloads,
                    "resident_bytes": m.spill.resident_bytes,
                },
                "hot_queries": hot_queries,
                "hot_functions": hot_functions,
                "audit": {
                    "candidates": audit.candidates,
                    "reported": audit.reported,
                    "deduped": audit.deduped,
                    "prefiltered": audit.prefiltered,
                    "unsat": audit.unsat,
                    "memoized": audit.memoized,
                    "scope_filtered": audit.scope_filtered,
                    "path_budget": audit.path_budget,
                    "pruned_mhp": audit.pruned_mhp,
                    "pruned_lock": audit.pruned_lock,
                    "pruned_order": audit.pruned_order,
                },
            },
        });
        doc
    }
}

/// Renders the human-readable text report: findings (or the no-bugs
/// line), witness verification, refutation cores and the `--stats`
/// tables.
fn print_text_output(
    cli: &Cli,
    prog: &canary_ir::Program,
    outcome: &canary_core::AnalysisOutcome,
    strategy: &str,
) {
    {
        if outcome.reports.is_empty() {
            println!("canary: no bugs found in {}", cli.file);
        } else {
            println!("{}", outcome.render(prog));
        }
        if !outcome.witness_replays.is_empty() {
            let m = &outcome.metrics;
            println!(
                "witness verification: {}/{} schedules replayed to their bug",
                m.witnesses_confirmed, m.witnesses_checked
            );
            for (r, replay) in outcome.reports.iter().zip(&outcome.witness_replays) {
                if !replay.confirmed() {
                    println!(
                        "  [unconfirmed] {} {} -> {}: {replay:?}",
                        r.kind,
                        canary_ir::render_inst(prog, r.source),
                        canary_ir::render_inst(prog, r.sink),
                    );
                }
            }
        }
        for r in &outcome.refuted {
            println!(
                "[refuted] {} candidate: {} -> {}\n  unsat core: {}",
                r.kind,
                canary_ir::render_inst(prog, r.source),
                canary_ir::render_inst(prog, r.sink),
                r.core.join("  &  "),
            );
        }
        if cli.stats {
            let m = &outcome.metrics;
            println!(
                "\nstats: {} stmts, {} threads | vfg {} nodes / {} edges \
                 ({} interference, {} lock-pruned) | {} escaped objects | \
                 {} paths, {} queries | \
                 {} workers: dataflow {:.1} ms ({} tasks), \
                 interference {:.1} ms ({} tasks), detect {:.1} ms",
                m.stmt_count,
                m.thread_count,
                m.vfg_nodes,
                m.vfg_edges,
                m.interference_edges,
                m.mhp_lock_pruned,
                m.escaped_objects,
                m.detect.candidate_paths,
                m.detect.queries,
                m.worker_threads,
                m.t_dataflow.as_secs_f64() * 1e3,
                m.dataflow_phase.tasks,
                m.t_interference.as_secs_f64() * 1e3,
                m.interference_phase.tasks,
                m.t_detect.as_secs_f64() * 1e3,
            );
            println!(
                "solver: {} queries ({} prefiltered) | {} decisions, \
                 {} conflicts, {} propagations, {} learned clauses, \
                 {} theory lemmas",
                m.detect.queries,
                m.detect.prefiltered,
                m.detect.decisions,
                m.detect.conflicts,
                m.detect.propagations,
                m.detect.learned,
                m.detect.theory_lemmas,
            );
            let reuse_rate = if m.detect.queries > 0 {
                100.0 * (m.detect.memo_hits + m.detect.core_subsumed) as f64
                    / m.detect.queries as f64
            } else {
                0.0
            };
            println!(
                "solver reuse [{}]: {} families | {} memo hits, \
                 {} core-subsumed, {} incremental ({:.1}% cache reuse) | \
                 {} clauses retained",
                strategy,
                m.detect.families,
                m.detect.memo_hits,
                m.detect.core_subsumed,
                m.detect.incremental,
                reuse_rate,
                m.detect.clauses_retained,
            );
            println!(
                "dispatch [{}]: {} shard epoch(s) | {} cube-escalated \
                 (cube-split {})",
                cli.config.detect.solver.dispatch.as_str(),
                m.detect.epochs,
                m.detect.cube_escalated,
                cli.config.detect.solver.cube_split,
            );
            match m.audit.reconcile() {
                Ok(summary) => println!("{}", summary.render()),
                Err(e) => println!("audit: RECONCILIATION FAILED: {e}"),
            }
            if m.spill.budget_bytes > 0 || m.spill.entries > 0 {
                println!(
                    "spill: {} entr(ies), {} bytes written | {} evictions, \
                     {} reloads | {} resident bytes (budget {} bytes)",
                    m.spill.entries,
                    m.spill.bytes_written,
                    m.spill.evictions,
                    m.spill.reloads,
                    m.spill.resident_bytes,
                    m.spill.budget_bytes,
                );
            }
            let hot = m.hottest_queries(TOP_K);
            if !hot.is_empty() {
                println!("hottest queries:");
                for (rank, p) in hot.iter().enumerate() {
                    println!(
                        "  {}. [{}] {} {} -> {} | path {} | {} bool / {} order atoms | \
                         {} decisions, {} conflicts, {} propagations | {:.2} ms",
                        rank + 1,
                        if p.prefiltered {
                            "prefiltered"
                        } else if p.sat {
                            "sat"
                        } else {
                            "unsat"
                        },
                        p.kind,
                        canary_ir::render_inst(prog, p.source),
                        canary_ir::render_inst(prog, p.sink),
                        p.path_len,
                        p.bool_atoms,
                        p.order_atoms,
                        p.decisions,
                        p.conflicts,
                        p.propagations,
                        p.wall.as_secs_f64() * 1e3,
                    );
                }
            }
            let hot = m.hottest_functions(TOP_K);
            if !hot.is_empty() {
                println!("hottest functions (Alg. 1):");
                for (rank, p) in hot.iter().enumerate() {
                    println!(
                        "  {}. {} | {} stmt visits over {} blocks | \
                         {} summary cells | {} stores / {} loads | {:.2} ms",
                        rank + 1,
                        p.name,
                        p.stmt_visits,
                        p.blocks,
                        p.summary_cells,
                        p.stores,
                        p.loads,
                        p.wall.as_secs_f64() * 1e3,
                    );
                }
            }
        }
    }
}
