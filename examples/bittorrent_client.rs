//! A transmission-style scenario (§7.3 of the paper): Canary found an
//! eight-year-old latent inter-thread use-after-free in the
//! `transmission` BitTorrent client. This example models the bug's
//! shape — a piece buffer shared between the download thread and a
//! verification worker, freed on one side while dereferenced on the
//! other — plus the fixed version where a `join` closes the race, and a
//! double-free between two teardown paths.
//!
//! ```sh
//! cargo run --example bittorrent_client
//! ```

use canary::{Canary, CanaryConfig};
use canary_detect::BugKind;

/// The latent bug: `tr_torrentStop` frees the piece buffer while the
/// verify worker may still be hashing it.
const RACY: &str = r#"
    fn main() {
        session = alloc session_obj;
        piece = alloc piece_buf;          // the shared piece buffer
        *session = piece;                 // registered in the session
        fork verifier verify_worker(session);
        // ... the download thread decides to stop the torrent:
        if (stop_requested) {
            p = *session;
            free p;                       // frees the piece buffer
        }
    }
    fn verify_worker(s) {
        buf = *s;                         // fetch the registered buffer
        use buf;                          // hash it — races with free
    }
"#;

/// The fix applied upstream: stop joins the verify worker first.
const FIXED: &str = r#"
    fn main() {
        session = alloc session_obj;
        piece = alloc piece_buf;
        *session = piece;
        fork verifier verify_worker(session);
        if (stop_requested) {
            join verifier;                // wait for the hash to finish
            p = *session;
            free p;
        }
    }
    fn verify_worker(s) {
        buf = *s;
        use buf;
    }
"#;

/// A teardown double-free: both the session close path and the error
/// path release the same buffer.
const DOUBLE_FREE: &str = r#"
    fn main() {
        piece = alloc piece_buf;
        fork closer close_worker(piece);
        // the error path in the main thread also frees:
        free piece;
    }
    fn close_worker(p) {
        free p;
    }
"#;

fn main() {
    let canary = Canary::with_config(CanaryConfig {
        checkers: vec![BugKind::UseAfterFree, BugKind::DoubleFree],
        ..CanaryConfig::default()
    });

    println!("== racy stop (the latent transmission-style bug) ==");
    let prog = canary::ir::parse(RACY).expect("example parses");
    let outcome = canary.analyze(&prog);
    assert!(
        outcome
            .reports
            .iter()
            .any(|r| r.kind == BugKind::UseAfterFree && r.inter_thread),
        "the racy variant must be reported"
    );
    println!("{}\n", outcome.render(&prog));

    println!("== fixed stop (join before free) ==");
    let prog = canary::ir::parse(FIXED).expect("example parses");
    let outcome = canary.analyze(&prog);
    assert!(
        outcome
            .reports
            .iter()
            .all(|r| r.kind != BugKind::UseAfterFree),
        "the join orders the hash before the free: no UAF"
    );
    println!("  no use-after-free: the join closes the window.\n");

    println!("== teardown double-free ==");
    let prog = canary::ir::parse(DOUBLE_FREE).expect("example parses");
    let outcome = canary.analyze(&prog);
    assert!(outcome
        .reports
        .iter()
        .any(|r| r.kind == BugKind::DoubleFree));
    println!("{}", outcome.render(&prog));
}
