//! A producer/consumer message queue exercising the §9 extension
//! (lock/unlock and wait/notify constraints) and the remaining
//! checkers: a cross-thread NULL-pointer publication and an
//! information leak of secret data through shared memory.
//!
//! ```sh
//! cargo run --example message_queue
//! ```

use canary::{Canary, CanaryConfig};
use canary_detect::BugKind;

/// The consumer dereferences whatever sits in the slot; the producer's
/// shutdown path publishes NULL to wake it — a classic inter-thread
/// null-dereference.
const NULL_SHUTDOWN: &str = r#"
    fn main() {
        q = alloc queue_slot;
        first = alloc msg0;
        *q = first;
        fork consumer consume(q);
        // ... later, shutdown publishes a NULL sentinel:
        if (shutting_down) {
            sentinel = null;
            *q = sentinel;
        }
    }
    fn consume(slot) {
        m = *slot;
        use m;                          // boom when m is the sentinel
    }
"#;

/// Secret data placed in the shared queue and drained to a public sink
/// by a logger thread (the DTAM-style leak of §1).
const TAINT_LEAK: &str = r#"
    fn main() {
        q = alloc queue_slot;
        secret = taint;                  // e.g. a key read into memory
        *q = secret;
        fork logger log_worker(q);
    }
    fn log_worker(slot) {
        m = *slot;
        sink m;                          // written to the public log
    }
"#;

/// A lock-protected handoff where the protection is real: the producer
/// only frees the message *after* the consumer notifies completion, so
/// the wait/notify order refutes the UAF.
const HANDSHAKE_OK: &str = r#"
    fn main() {
        q = alloc queue_slot;
        cv = alloc done_cv;
        m = alloc msg;
        *q = m;
        fork consumer consume2(q, cv);
        wait cv;                         // blocks until the consumer is done
        free m;                          // safe: use happened before notify
    }
    fn consume2(slot, cv2) {
        x = *slot;
        use x;
        notify cv2;
    }
"#;

fn main() {
    let canary = Canary::with_config(CanaryConfig {
        checkers: vec![
            BugKind::NullDeref,
            BugKind::DataLeak,
            BugKind::UseAfterFree,
        ],
        ..CanaryConfig::default()
    });

    println!("== NULL shutdown sentinel ==");
    let prog = canary::ir::parse(NULL_SHUTDOWN).expect("example parses");
    let outcome = canary.analyze(&prog);
    assert!(outcome
        .reports
        .iter()
        .any(|r| r.kind == BugKind::NullDeref && r.inter_thread));
    println!("{}\n", outcome.render(&prog));

    println!("== secret leaked through the queue ==");
    let prog = canary::ir::parse(TAINT_LEAK).expect("example parses");
    let outcome = canary.analyze(&prog);
    assert!(outcome
        .reports
        .iter()
        .any(|r| r.kind == BugKind::DataLeak));
    println!("{}\n", outcome.render(&prog));

    println!("== wait/notify-protected free (no report) ==");
    let prog = canary::ir::parse(HANDSHAKE_OK).expect("example parses");
    let outcome = canary.analyze(&prog);
    assert!(
        outcome
            .reports
            .iter()
            .all(|r| r.kind != BugKind::UseAfterFree),
        "the notify→wait order proves the free safe: {:?}",
        outcome.reports
    );
    println!("  no use-after-free: notify(cv) must precede wait(cv), so the");
    println!("  consumer's dereference is ordered before the producer's free.");
}
