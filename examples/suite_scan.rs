//! Scans a slice of the synthetic Tbl. 1 suite with Canary and the two
//! baselines, printing a miniature of the paper's precision comparison
//! (§7.2). Demonstrates the `canary-workloads` generator API and the
//! ground-truth scoring.
//!
//! ```sh
//! cargo run --release --example suite_scan
//! ```

use std::time::Duration;

use canary::{Canary, CanaryConfig};
use canary_baselines::{saber, Budgeted, Deadline};
use canary_detect::{BugKind, DetectOptions};
use canary_ir::Label;
use canary_workloads::{evaluate, generate, table1_suite, SuiteScale};

fn main() {
    let scale = SuiteScale {
        stmts_per_kloc: 1.5,
        min_stmts: 200,
        max_stmts: 4000,
    };
    let canary = Canary::with_config(CanaryConfig {
        checkers: vec![BugKind::UseAfterFree],
        detect: DetectOptions {
            inter_thread_only: true,
            ..DetectOptions::default()
        },
        ..CanaryConfig::default()
    });

    println!("subject        stmts  canary(TP/FP/miss)  saber(#rep, FP%)");
    println!("------------------------------------------------------------");
    for spec in table1_suite(scale).into_iter().take(8) {
        let w = generate(&spec);
        let outcome = canary.analyze(&w.prog);
        let pairs: Vec<(Label, Label)> =
            outcome.reports.iter().map(|r| (r.source, r.sink)).collect();
        let ce = evaluate(&w.truth, &pairs);
        let saber_cell = match saber::check_uaf(&w.prog, Deadline::after(Duration::from_secs(20)))
        {
            Budgeted::Done(rs) => {
                let se = evaluate(
                    &w.truth,
                    &rs.iter().map(|r| (r.source, r.sink)).collect::<Vec<_>>(),
                );
                format!("{:>4}  {:>6.1}%", rs.len(), se.fp_rate())
            }
            Budgeted::TimedOut => "  NA      NA".to_string(),
        };
        println!(
            "{:<13} {:>6}        {}/{}/{}        {}",
            spec.name,
            w.prog.stmt_count(),
            ce.true_positives,
            ce.false_positives,
            ce.missed,
            saber_cell,
        );
    }
    println!("\n(Canary reports the seeded bugs plus only the benign-pattern");
    println!(" false positives; the unguarded baseline reports every");
    println!(" graph-reachable pair.)");
}
