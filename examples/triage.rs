//! Triage workflow: everything Canary gives you to *dispose* of a
//! finding — confirmed reports with witness interleavings, refuted
//! candidates with minimal unsat cores, and a memory-model sweep that
//! shows which findings only exist under weaker hardware orderings.
//!
//! ```sh
//! cargo run --example triage
//! ```

use canary::{Canary, CanaryConfig};
use canary_detect::{BugKind, DetectOptions, MemoryModel};

/// One shared cell, three outcomes: a real race, an order-protected
/// free, and a guard-protected free.
const MIXED: &str = r#"
    fn main() {
        cell = alloc c;
        v1 = alloc payload1;
        *cell = v1;
        fork reader consume(cell);
        free v1;                      // (1) races with the reader: REAL

        v2 = alloc payload2;
        fork reader2 consume2(v2);
        join reader2;
        free v2;                      // (2) join-ordered: SAFE

        v3 = alloc payload3;
        fork reader3 consume3(v3);
        if (shutdown) {
            free v3;                  // (3) guard-protected: SAFE
        }
    }
    fn consume(slot) { x = *slot; use x; }
    fn consume2(p) { use p; }
    fn consume3(q) { if (!shutdown) { use q; } }
"#;

fn main() {
    let canary = Canary::with_config(CanaryConfig {
        checkers: vec![BugKind::UseAfterFree],
        detect: DetectOptions {
            explain_refutations: true,
            ..DetectOptions::default()
        },
        ..CanaryConfig::default()
    });
    let prog = canary::ir::parse(MIXED).expect("example parses");
    let outcome = canary.analyze(&prog);

    println!("== confirmed ({} report) ==", outcome.reports.len());
    println!("{}\n", outcome.render(&prog));
    assert_eq!(outcome.reports.len(), 1);
    assert!(
        !outcome.reports[0].schedule.is_empty(),
        "confirmed reports carry a witness interleaving"
    );

    println!("== refuted ({} candidates) ==", outcome.refuted.len());
    for r in &outcome.refuted {
        println!(
            "  {} -> {}\n    why not: {}",
            canary::ir::render_inst(&prog, r.source),
            canary::ir::render_inst(&prog, r.sink),
            r.core.join("  &  "),
        );
    }
    assert_eq!(outcome.refuted.len(), 2, "{:?}", outcome.refuted);

    // Memory-model sweep on a store-buffering-prone publication.
    let sb = r#"
        fn main() {
            c = alloc cell;
            bad = alloc victim;
            *c = bad;
            c2 = c;
            good = alloc fresh;
            *c2 = good;
            free bad;
            fork t w(c);
        }
        fn w(p) { y = *p; use y; }
    "#;
    println!("\n== memory-model sweep (store-buffering publication) ==");
    for (name, model) in [
        ("SC ", MemoryModel::Sc),
        ("TSO", MemoryModel::Tso),
        ("PSO", MemoryModel::Pso),
    ] {
        let canary = Canary::with_config(CanaryConfig {
            checkers: vec![BugKind::UseAfterFree],
            detect: DetectOptions {
                memory_model: model,
                ..DetectOptions::default()
            },
            ..CanaryConfig::default()
        });
        let n = canary.analyze_source(sb).expect("parses").reports.len();
        println!("  {name}: {n} report(s)");
    }
    println!("  -> the stale publication is only observable under PSO's");
    println!("     store-store reordering.");
}
