//! Triage workflow: everything Canary gives you to *dispose* of a
//! finding — confirmed reports with witness interleavings and their
//! provenance DAGs, stable fingerprints with run-to-run diffing
//! (new / persisting / fixed), refuted candidates with minimal unsat
//! cores, and a memory-model sweep that shows which findings only
//! exist under weaker hardware orderings.
//!
//! ```sh
//! cargo run --example triage
//! ```

use canary::{Canary, CanaryConfig};
use canary_detect::{BugKind, DetectOptions, MemoryModel};
use canary_report::{diff_sarif, sarif_document, RunManifest};

/// One shared cell, three outcomes: a real race, an order-protected
/// free, and a guard-protected free.
const MIXED: &str = r#"
    fn main() {
        cell = alloc c;
        v1 = alloc payload1;
        *cell = v1;
        fork reader consume(cell);
        free v1;                      // (1) races with the reader: REAL

        v2 = alloc payload2;
        fork reader2 consume2(v2);
        join reader2;
        free v2;                      // (2) join-ordered: SAFE

        v3 = alloc payload3;
        fork reader3 consume3(v3);
        if (shutdown) {
            free v3;                  // (3) guard-protected: SAFE
        }
    }
    fn consume(slot) { x = *slot; use x; }
    fn consume2(p) { use p; }
    fn consume3(q) { if (!shutdown) { use q; } }
"#;

fn main() {
    let canary = Canary::with_config(CanaryConfig {
        checkers: vec![BugKind::UseAfterFree],
        detect: DetectOptions {
            explain_refutations: true,
            ..DetectOptions::default()
        },
        ..CanaryConfig::default()
    });
    let prog = canary::ir::parse(MIXED).expect("example parses");
    let outcome = canary.analyze(&prog);

    println!("== confirmed ({} report) ==", outcome.reports.len());
    println!("{}\n", outcome.render(&prog));
    assert_eq!(outcome.reports.len(), 1);
    let report = &outcome.reports[0];
    assert!(
        !report.schedule.is_empty(),
        "confirmed reports carry a witness interleaving"
    );

    // Every confirmed report explains itself: the value-flow chain,
    // the escaped object licensing each interference edge, the MHP
    // facts consulted, and the satisfying model slice — as a DAG.
    println!("== provenance (fingerprint {}) ==", report.fingerprint(&prog));
    let provenance = report.provenance.as_ref().expect("reports carry provenance");
    for edge in &provenance.edges {
        let via = match &edge.escape {
            Some(esc) => format!("  [licensed by escaped `{}`]", esc.obj),
            None => String::new(),
        };
        println!(
            "  {} -[{}]-> {}{via}",
            provenance.nodes[edge.from].render,
            canary_detect::edge_kind_name(edge.kind),
            provenance.nodes[edge.to].render,
        );
    }
    println!("  DOT snippet (pipe the full graph into `dot -Tsvg`):");
    let dot = provenance.to_dot("use-after-free");
    for line in dot.lines().filter(|l| l.contains("->")).take(4) {
        println!("    {}", line.trim());
    }

    // Fingerprint-keyed diffing: fix bug (1) by joining the reader
    // before the free, re-run, and classify the change. The fix shows
    // up as `fixed`; nothing is `new`.
    let fixed_src = MIXED.replace(
        "fork reader consume(cell);\n        free v1;",
        "fork reader consume(cell);\n        join reader;\n        free v1;",
    );
    let fixed_prog = canary::ir::parse(&fixed_src).expect("fixed example parses");
    let fixed_outcome = canary.analyze(&fixed_prog);
    let manifest = |hash: &str| RunManifest {
        file: "triage.cir".into(),
        corpus_hash: hash.into(),
        strategy: "incremental".into(),
        threads: 1,
        config: vec![],
        canary_version: env!("CARGO_PKG_VERSION").into(),
        rustc_version: String::new(),
        timings_ms: vec![],
    };
    let before = sarif_document(&prog, &outcome.reports, &manifest("before"));
    let after = sarif_document(&fixed_prog, &fixed_outcome.reports, &manifest("after"));
    let diff = diff_sarif(&before, &after).expect("well-formed SARIF");
    println!("\n== run diff (before-fix baseline vs after-fix) ==");
    print!("{}", diff.render());
    assert_eq!(diff.fixed.len(), 1, "the joined free is fixed");
    assert!(!diff.has_new(), "the fix introduces nothing new");

    println!("\n== refuted ({} candidates) ==", outcome.refuted.len());
    for r in &outcome.refuted {
        println!(
            "  {} -> {}\n    why not: {}",
            canary::ir::render_inst(&prog, r.source),
            canary::ir::render_inst(&prog, r.sink),
            r.core.join("  &  "),
        );
    }
    assert_eq!(outcome.refuted.len(), 2, "{:?}", outcome.refuted);

    // Memory-model sweep on a store-buffering-prone publication.
    let sb = r#"
        fn main() {
            c = alloc cell;
            bad = alloc victim;
            *c = bad;
            c2 = c;
            good = alloc fresh;
            *c2 = good;
            free bad;
            fork t w(c);
        }
        fn w(p) { y = *p; use y; }
    "#;
    println!("\n== memory-model sweep (store-buffering publication) ==");
    for (name, model) in [
        ("SC ", MemoryModel::Sc),
        ("TSO", MemoryModel::Tso),
        ("PSO", MemoryModel::Pso),
    ] {
        let canary = Canary::with_config(CanaryConfig {
            checkers: vec![BugKind::UseAfterFree],
            detect: DetectOptions {
                memory_model: model,
                ..DetectOptions::default()
            },
            ..CanaryConfig::default()
        });
        let n = canary.analyze_source(sb).expect("parses").reports.len();
        println!("  {name}: {n} report(s)");
    }
    println!("  -> the stale publication is only observable under PSO's");
    println!("     store-store reordering.");
}
