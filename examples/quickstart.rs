//! Quickstart: the paper's §2 walkthrough.
//!
//! Analyzes the bug-free Fig. 2 program (the inter-thread use-after-free
//! that path-insensitive tools report as a false positive) and a buggy
//! variant, showing how Canary refutes the first and confirms the
//! second.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use canary::{Canary, Error};

const FIG2_BUG_FREE: &str = r#"
    fn main(a) {
        x = alloc o1;            // x points to the shared object o1
        *x = a;                  // store main's value
        fork t thread1(x);       // child thread shares o1 through x
        if (theta1) {
            c = *x;              // load — may observe thread1's store
            use c;               // dereference (the potential UAF sink)
        }
    }
    fn thread1(y) {
        b = alloc o2;
        if (!theta1) {           // note: the *same* condition, negated
            *y = b;              // publish b through the shared cell
            free b;              // free it (the potential UAF source)
        }
    }
"#;

const FIG2_BUGGY: &str = r#"
    fn main(a) {
        x = alloc o1;
        *x = a;
        fork t thread1(x);
        c = *x;
        use c;
    }
    fn thread1(y) {
        b = alloc o2;
        *y = b;
        free b;
    }
"#;

fn main() -> Result<(), Error> {
    let canary = Canary::new();

    println!("== Fig. 2 (bug-free: θ1 on the load, ¬θ1 on the store) ==");
    let outcome = canary.analyze_source(FIG2_BUG_FREE)?;
    println!(
        "  VFG: {} nodes, {} edges ({} interference), {} escaped objects",
        outcome.metrics.vfg_nodes,
        outcome.metrics.vfg_edges,
        outcome.metrics.interference_edges,
        outcome.metrics.escaped_objects,
    );
    println!(
        "  candidate paths: {}, SMT queries: {}, confirmed: {}",
        outcome.metrics.detect.candidate_paths,
        outcome.metrics.detect.queries,
        outcome.reports.len(),
    );
    assert!(outcome.reports.is_empty());
    println!("  -> no report: the SMT solver proves θ1 ∧ ¬θ1 unsatisfiable.\n");

    println!("== Same program without the contradictory guards ==");
    let prog = canary::ir::parse(FIG2_BUGGY).map_err(Error::from)?;
    let outcome = canary.analyze(&prog);
    assert_eq!(outcome.reports.len(), 1);
    println!("{}", outcome.render(&prog));
    println!("  -> one inter-thread use-after-free, with its witness path.");
    Ok(())
}
