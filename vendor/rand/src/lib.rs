//! Workspace-local stand-in for the `rand` crate.
//!
//! The workspace only ever constructs a deterministic `StdRng` from a
//! fixed seed (`SeedableRng::seed_from_u64`) and draws integers with
//! `Rng::gen_range`, so that is all this crate provides. The generator
//! is SplitMix64 — tiny, statistically fine for workload synthesis, and
//! (unlike the real `StdRng`) guaranteed stable across releases, which
//! is exactly what seeded workload generation wants.

use std::ops::{Range, RangeInclusive};

/// Rngs constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a seed; equal seeds yield equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that integer samples can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from `rng` uniformly within the range.
    ///
    /// Panics if the range is empty.
    fn sample(self, rng: &mut rngs::StdRng) -> T;
}

/// The user-facing random-value interface.
pub trait Rng {
    /// Returns the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: AsStdRng,
    {
        range.sample(self.as_std_rng())
    }

    /// Returns a uniformly random bool.
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 bits of mantissa → uniform in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// Helper allowing `SampleRange` to take the concrete rng type while
/// `Rng` stays usable through the trait.
pub trait AsStdRng {
    fn as_std_rng(&mut self) -> &mut rngs::StdRng;
}

pub mod rngs {
    //! Concrete generators (`rand::rngs` in the real crate).

    use super::{AsStdRng, Rng, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl AsStdRng for StdRng {
        fn as_std_rng(&mut self) -> &mut StdRng {
            self
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Modulo bias is negligible for the small spans the
                // workspace draws (≤ a few thousand) against 2^64.
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % span as u64) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(5..10u32);
            assert!((5..10).contains(&v));
            let w = r.gen_range(3..=4usize);
            assert!((3..=4).contains(&w));
        }
    }
}
