//! Workspace-local stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! shapes the workspace actually declares — named-field structs, tuple
//! structs, and enums with unit / tuple / struct variants — without
//! `syn`/`quote` (unavailable offline). The item is parsed directly
//! from the `proc_macro::TokenStream` and the impl is emitted as source
//! text. Encoding follows serde's externally-tagged JSON conventions:
//!
//! * named struct        → `{"field": ...}`
//! * newtype struct      → inner value
//! * n-tuple struct      → `[...]`
//! * unit enum variant   → `"Variant"`
//! * newtype variant     → `{"Variant": inner}`
//! * struct variant      → `{"Variant": {"field": ...}}`
//!
//! `#[serde(...)]` attributes are not supported (none are used in this
//! workspace) and generic parameters are rejected.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field layout of a struct or enum variant.
enum Fields {
    Unit,
    /// Tuple fields; only the count matters for codegen.
    Tuple(usize),
    Named(Vec<String>),
}

enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<(String, Fields)> },
}

/// Derives the value-tree `Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

/// Derives the value-tree `Deserialize` impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated impl parses")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    skip_attrs_and_vis(&mut toks);
    let kind = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };
    if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stand-in does not support generic types ({name})");
    }
    match kind.as_str() {
        "struct" => {
            let fields = match toks.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("unexpected struct body for {name}: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match toks.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("expected enum body for {name}, got {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("cannot derive for `{other}` items"),
    }
}

/// Skips leading `#[...]` attributes (including doc comments) and a
/// `pub` / `pub(...)` visibility prefix.
fn skip_attrs_and_vis(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                // The bracketed attribute body.
                toks.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if matches!(
                    toks.peek(),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    toks.next();
                }
            }
            _ => return,
        }
    }
}

/// Counts fields of a tuple struct/variant body: top-level commas at
/// angle-bracket depth zero delimit fields (token groups already nest
/// parens/brackets/braces).
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut fields = 0usize;
    let mut saw_tokens = false;
    let mut angle_depth = 0i32;
    for t in body {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                fields += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    if saw_tokens {
        fields += 1;
    }
    fields
}

/// Extracts the field names of a named-field body, skipping per-field
/// attributes, visibility, and the type after each `:`.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut names = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected field name, got {other:?}"),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        names.push(name);
        // Skip the type: consume until a comma at angle depth zero.
        let mut angle_depth = 0i32;
        for t in toks.by_ref() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    names
}

fn parse_variants(body: TokenStream) -> Vec<(String, Fields)> {
    let mut variants = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected variant name, got {other:?}"),
        };
        let fields = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                toks.next();
                Fields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let names = parse_named_fields(g.stream());
                toks.next();
                Fields::Named(names)
            }
            _ => Fields::Unit,
        };
        variants.push((name, fields));
        // Consume the separating comma, if any (no discriminants in
        // this workspace).
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => break,
            other => panic!("expected `,` between variants, got {other:?}"),
        }
    }
    variants
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

const IMPL_ATTRS: &str = "#[automatically_derived]\n#[allow(clippy::all, unused_mut, unused_variables)]\n";

/// `{"f1": v1, ...}` construction from `expr(field)` accessors.
fn named_to_value(fields: &[String], access: impl Fn(&str) -> String) -> String {
    let mut s = String::from(
        "{ let mut m = ::std::collections::BTreeMap::new();\n",
    );
    for f in fields {
        s.push_str(&format!(
            "m.insert(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({}));\n",
            access(f)
        ));
    }
    s.push_str("::serde::Value::Object(m) }");
    s
}

/// Struct-literal deserialization of named fields from map `m`.
fn named_from_value(path: &str, fields: &[String]) -> String {
    let mut s = format!("{path} {{\n");
    for f in fields {
        s.push_str(&format!(
            "{f}: ::serde::Deserialize::from_value(::serde::get_field(m, \"{f}\"))?,\n"
        ));
    }
    s.push('}');
    s
}

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
                }
                Fields::Named(fs) => named_to_value(fs, |f| format!("&self.{f}")),
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::String(::std::string::String::from(\"{v}\")),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{v}({}) => {{ let mut m = ::std::collections::BTreeMap::new();\n\
                             m.insert(::std::string::String::from(\"{v}\"), {inner});\n\
                             ::serde::Value::Object(m) }},\n",
                            binds.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let inner = named_to_value(fs, |f| f.to_string());
                        arms.push_str(&format!(
                            "{name}::{v} {{ {} }} => {{ let mut m = ::std::collections::BTreeMap::new();\n\
                             m.insert(::std::string::String::from(\"{v}\"), {inner});\n\
                             ::serde::Value::Object(m) }},\n",
                            fs.join(", ")
                        ));
                    }
                }
            }
            (name, format!("match self {{\n{arms}}}"))
        }
    };
    format!(
        "{IMPL_ATTRS}impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("{{ let _ = v; Ok({name}) }}"),
                Fields::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
                }
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                        .collect();
                    format!(
                        "match v {{\n\
                         ::serde::Value::Array(items) if items.len() == {n} => \
                         Ok({name}({})),\n\
                         _ => Err(::serde::DeError::expected(\"array of {n}\", \"{name}\")),\n}}",
                        elems.join(", ")
                    )
                }
                Fields::Named(fs) => format!(
                    "match v {{\n\
                     ::serde::Value::Object(m) => Ok({}),\n\
                     _ => Err(::serde::DeError::expected(\"object\", \"{name}\")),\n}}",
                    named_from_value(name, fs)
                ),
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!("\"{v}\" => Ok({name}::{v}),\n"));
                    }
                    Fields::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{v}\" => Ok({name}::{v}(::serde::Deserialize::from_value(inner)?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{v}\" => match inner {{\n\
                             ::serde::Value::Array(items) if items.len() == {n} => \
                             Ok({name}::{v}({})),\n\
                             _ => Err(::serde::DeError::expected(\"array of {n}\", \"{name}\")),\n}},\n",
                            elems.join(", ")
                        ));
                    }
                    Fields::Named(fs) => tagged_arms.push_str(&format!(
                        "\"{v}\" => match inner {{\n\
                         ::serde::Value::Object(m) => Ok({}),\n\
                         _ => Err(::serde::DeError::expected(\"object\", \"{name}\")),\n}},\n",
                        named_from_value(&format!("{name}::{v}"), fs)
                    )),
                }
            }
            let body = format!(
                "match v {{\n\
                 ::serde::Value::String(s) => match s.as_str() {{\n\
                 {unit_arms}other => Err(::serde::DeError::unknown_variant(other, \"{name}\")),\n}},\n\
                 ::serde::Value::Object(m) => {{\n\
                 let (tag, inner) = ::serde::single_entry(m, \"{name}\")?;\n\
                 let _ = inner;\n\
                 match tag {{\n\
                 {tagged_arms}other => Err(::serde::DeError::unknown_variant(other, \"{name}\")),\n}}\n}},\n\
                 _ => Err(::serde::DeError::expected(\"string or object\", \"{name}\")),\n}}"
            );
            (name, body)
        }
    };
    format!(
        "{IMPL_ATTRS}impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         {body}\n}}\n}}\n"
    )
}
