//! Workspace-local stand-in for the `serde` crate.
//!
//! The build environment has no registry access, so serialization is
//! provided by this deliberately small crate. Instead of serde's
//! visitor-based zero-copy architecture, types convert to and from a
//! JSON-like [`Value`] tree: `Serialize` produces a `Value`,
//! `Deserialize` consumes one. The companion `serde_json` crate turns
//! `Value`s into JSON text and back. Object maps are `BTreeMap`s, so
//! serialized output is canonically key-ordered — a property the
//! workspace's determinism tests rely on.
//!
//! The derive macros (from the sibling `serde_derive` crate, re-exported
//! here as in real serde) cover what the workspace uses: named-field
//! structs, tuple structs, and enums with unit / tuple / struct
//! variants, encoded with serde's externally-tagged JSON conventions.

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::{Number, Value};

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    /// Error for a value of the wrong shape.
    pub fn expected(what: &str, ty: &str) -> Self {
        DeError(format!("expected {what} while deserializing {ty}"))
    }

    /// Error for an unrecognized enum variant name.
    pub fn unknown_variant(variant: &str, ty: &str) -> Self {
        DeError(format!("unknown variant `{variant}` for {ty}"))
    }
}

/// Types convertible to the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types constructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

/// A `Null` with a `'static` address, for representing absent fields.
pub static NULL: Value = Value::Null;

/// Looks up a struct field, treating a missing key as `Null` (so
/// `Option` fields tolerate omission).
pub fn get_field<'a>(map: &'a BTreeMap<String, Value>, key: &str) -> &'a Value {
    map.get(key).unwrap_or(&NULL)
}

/// Unwraps the single `{ "Variant": inner }` entry of an externally
/// tagged enum encoding.
pub fn single_entry<'a>(
    map: &'a BTreeMap<String, Value>,
    ty: &str,
) -> Result<(&'a str, &'a Value), DeError> {
    let mut it = map.iter();
    match (it.next(), it.next()) {
        (Some((k, v)), None) => Ok((k.as_str(), v)),
        _ => Err(DeError::expected("single-key variant object", ty)),
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("boolean", "bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::String(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Number(Number::PosInt(n)) => {
                        <$t>::try_from(*n).map_err(|_| {
                            DeError::expected("in-range integer", stringify!($t))
                        })
                    }
                    Value::Number(Number::NegInt(n)) => {
                        <$t>::try_from(*n).map_err(|_| {
                            DeError::expected("non-negative integer", stringify!($t))
                        })
                    }
                    _ => Err(DeError::expected("integer", stringify!($t))),
                }
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Number(Number::PosInt(n)) => {
                        <$t>::try_from(*n).map_err(|_| {
                            DeError::expected("in-range integer", stringify!($t))
                        })
                    }
                    Value::Number(Number::NegInt(n)) => {
                        <$t>::try_from(*n).map_err(|_| {
                            DeError::expected("in-range integer", stringify!($t))
                        })
                    }
                    _ => Err(DeError::expected("integer", stringify!($t))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Number(n) => Ok(n.as_f64()),
            _ => Err(DeError::expected("number", "f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array", "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(DeError::expected("object", "BTreeMap")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&o.to_value()).unwrap(), None);
    }

    #[test]
    fn out_of_range_integer_rejected() {
        assert!(u8::from_value(&1000u32.to_value()).is_err());
        assert!(u32::from_value(&(-1i32).to_value()).is_err());
    }
}
