//! The JSON-like value tree shared by `serde` and `serde_json`.
//!
//! Lives here (rather than in `serde_json`) because the `Serialize` /
//! `Deserialize` traits are defined in terms of it; `serde_json`
//! re-exports it as its `Value`.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Index;

/// A JSON number. Integers keep exact 64-bit representations; anything
/// else is an `f64`.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A floating-point number.
    Float(f64),
}

impl Number {
    /// The number as an `f64` (lossy for huge integers).
    pub fn as_f64(&self) -> f64 {
        match self {
            Number::PosInt(n) => *n as f64,
            Number::NegInt(n) => *n as f64,
            Number::Float(f) => *f,
        }
    }

    /// The number as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Number::PosInt(n) => Some(*n),
            Number::NegInt(n) => u64::try_from(*n).ok(),
            Number::Float(_) => None,
        }
    }

    /// The number as an `i64`, if it is an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Number::PosInt(n) => i64::try_from(*n).ok(),
            Number::NegInt(n) => Some(*n),
            Number::Float(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => a == b,
            _ => match (self.as_u64(), other.as_u64()) {
                (Some(a), Some(b)) => a == b,
                _ => self.as_f64() == other.as_f64(),
            },
        }
    }
}

/// A JSON document tree.
///
/// Objects are `BTreeMap`s: keys render in sorted order, making the
/// serialized form canonical — equal values always print identically.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// A JSON number.
    Number(Number),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object with canonically sorted keys.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member by key; `None` if absent or not an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Compact JSON rendering.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Pretty JSON rendering with two-space indentation.
    pub fn to_json_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(n) => write_number(n, out),
            Value::String(s) => write_escaped(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Object(m) if !m.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_number(n: &Number, out: &mut String) {
    use std::fmt::Write;
    match n {
        Number::PosInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::NegInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::Float(f) => {
            if f.is_finite() {
                // Rust's float Display already prints the shortest
                // round-trippable form; make sure integral floats keep
                // a fractional marker so they re-parse as floats.
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // JSON has no NaN/inf; mirror serde_json's `null`.
                out.push_str("null");
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    use std::fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json_string())
    }
}

impl Index<&str> for Value {
    type Output = Value;

    /// Member access; yields `Null` for missing keys or non-objects,
    /// like `serde_json`.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&crate::NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    /// Element access; yields `Null` out of bounds or on non-arrays.
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&crate::NULL),
            _ => &crate::NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        self.as_i64() == Some(i64::from(*other))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Self {
        Value::String(v.clone())
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(Number::Float(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Number(Number::Float(f64::from(v)))
    }
}

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::Number(Number::PosInt(v as u64))
            }
        }
    )*};
}

macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                let v = v as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
    )*};
}

from_unsigned!(u8, u16, u32, u64, usize);
from_signed!(i8, i16, i32, i64, isize);

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Self {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(items: &[T]) -> Self {
        Value::Array(items.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&Vec<T>> for Value {
    fn from(items: &Vec<T>) -> Self {
        Value::Array(items.iter().cloned().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_missing_yields_null() {
        let v = Value::Object(BTreeMap::new());
        assert!(v["nope"].is_null());
        assert!(v["nope"][3].is_null());
    }

    #[test]
    fn compact_rendering_is_sorted_and_escaped() {
        let mut m = BTreeMap::new();
        m.insert("b".to_string(), Value::from(1u32));
        m.insert("a".to_string(), Value::from("x\"y\n"));
        let v = Value::Object(m);
        assert_eq!(v.to_json_string(), r#"{"a":"x\"y\n","b":1}"#);
    }

    #[test]
    fn float_keeps_fraction_marker() {
        assert_eq!(Value::from(2.0f64).to_json_string(), "2.0");
        assert_eq!(Value::from(2.5f64).to_json_string(), "2.5");
    }

    #[test]
    fn scalar_comparisons() {
        assert_eq!(Value::from("hi"), "hi");
        assert_eq!(Value::from(true), true);
        assert_eq!(Value::from(3u32), 3u64);
    }
}
