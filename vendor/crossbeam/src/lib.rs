//! Workspace-local stand-in for the `crossbeam` crate.
//!
//! Only the scoped-thread surface the workspace uses is provided,
//! implemented over `std::thread::scope` (which has offered structured
//! borrowing of stack data since Rust 1.63). The `crossbeam` calling
//! convention is kept: `scope(|s| { s.spawn(|_| ...); })` where spawn
//! closures receive the scope handle so they can spawn siblings.

pub mod thread_mod {
    //! Scoped threads (`crossbeam::thread` in the real crate).

    use std::thread;

    /// A scope handle passed to [`scope`] closures; spawned closures can
    /// use it to spawn further sibling threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope
        /// handle, matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                handle: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        handle: thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, yielding its result (or the
        /// panic payload as `Err`, as crossbeam does).
        pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.handle.join()
            })) {
                Ok(r) => r,
                Err(e) => Err(e),
            }
        }
    }

    /// Creates a scope in which threads borrowing from the environment
    /// can be spawned; returns once every spawned thread has joined.
    ///
    /// Unlike crossbeam (which collects panics into the returned
    /// `Result`), a panicking scoped thread propagates when the scope
    /// joins — acceptable for this workspace, where worker panics are
    /// programming errors.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub use thread_mod as thread;

/// Convenience re-export matching `crossbeam::scope`.
pub use thread_mod::scope;

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_workers() {
        let mut data = vec![0u32; 4];
        let chunks: Vec<&mut u32> = data.iter_mut().collect();
        super::scope(|s| {
            let mut handles = Vec::new();
            for (i, slot) in chunks.into_iter().enumerate() {
                handles.push(s.spawn(move |_| {
                    *slot = i as u32 + 1;
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
        })
        .unwrap();
        assert_eq!(data, vec![1, 2, 3, 4]);
    }

    #[test]
    fn nested_spawn_from_scope_handle() {
        let out = super::scope(|s| s.spawn(|s2| s2.spawn(|_| 7).join().unwrap()).join().unwrap())
            .unwrap();
        assert_eq!(out, 7);
    }
}
