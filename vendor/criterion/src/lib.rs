//! Workspace-local stand-in for the `criterion` crate.
//!
//! Keeps the API shape the workspace benches use (`criterion_group!`,
//! `benchmark_group`, `bench_with_input`, `Throughput`, …) but replaces
//! the statistical machinery with a single timed pass per benchmark,
//! printed as one line. Good enough to smoke-test that benches run and
//! to eyeball relative cost; not a statistics engine.

use std::time::{Duration, Instant};

/// Throughput annotation; recorded for display only.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter into an id.
    pub fn new<P: std::fmt::Display>(function: &str, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{function}/{parameter}"),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing harness handed to bench closures.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, running it a handful of times and keeping the
    /// fastest observation (single-shot approximation of criterion).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let mut best = Duration::MAX;
        const RUNS: u32 = 3;
        for _ in 0..RUNS {
            let start = Instant::now();
            let out = routine();
            let dt = start.elapsed();
            std::hint::black_box(out);
            if dt < best {
                best = dt;
            }
        }
        self.elapsed = best;
        self.iters = RUNS as u64;
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sample-size hint; accepted and ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Measurement-time hint; accepted and ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the throughput annotation for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b, input);
        self.report(&id.to_string(), &b);
        self
    }

    /// Runs one benchmark with no input.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        self.report(id, &b);
        self
    }

    fn report(&self, id: &str, b: &Bencher) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if !b.elapsed.is_zero() => {
                format!("  ({:.0} elem/s)", n as f64 / b.elapsed.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if !b.elapsed.is_zero() => {
                format!("  ({:.0} B/s)", n as f64 / b.elapsed.as_secs_f64())
            }
            _ => String::new(),
        };
        println!("{}/{}: {:?}{}", self.name, id, b.elapsed, rate);
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            _criterion: self,
        }
    }
}

/// Opaque value sink preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
