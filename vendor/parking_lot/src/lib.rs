//! Workspace-local stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the handful of
//! synchronization primitives the workspace uses are provided here as
//! thin wrappers over `std::sync`. The semantic difference that matters
//! to callers — `parking_lot` locks do not poison — is preserved by
//! recovering the guard from a poisoned `std` lock.

use std::sync::{self, PoisonError};

/// A reader-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared read guard. See [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard. See [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A mutex that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Exclusive guard. See [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_locks() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 42);
    }
}
