//! Workspace-local stand-in for the `serde_json` crate.
//!
//! Provides JSON text ⇄ [`Value`] conversion, generic `to_string` /
//! `from_str` over the stand-in serde traits, and the `json!` macro.
//! Objects are key-sorted `BTreeMap`s, so serialization is canonical:
//! equal documents always render byte-identically — the property the
//! determinism test suite asserts across worker-thread counts.

use std::fmt;

pub use serde::{Number, Value};

mod parse;

/// Parse or shape error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json_string())
}

/// Serializes `value` to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json_string_pretty())
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Reconstructs a typed value from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::from_value(value)?)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse::parse(s)?;
    Ok(T::from_value(&v)?)
}

/// Parses JSON bytes (UTF-8) into any deserializable type.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

/// Builds a [`Value`] from JSON-like syntax. Supports object and array
/// literals, `null`, and arbitrary Rust expressions anywhere a value is
/// expected (converted with `Value::from`).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => {{
        let mut items: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
        let out = &mut items;
        $crate::json_elems!(out; $($tt)*);
        $crate::Value::Array(items)
    }};
    ({ $($tt:tt)* }) => {{
        let mut map = ::std::collections::BTreeMap::<::std::string::String, $crate::Value>::new();
        $crate::json_entries!(map; $($tt)*);
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::value_of(&$other) };
}

/// Internal support for `json!`: serializes through a reference so
/// expressions naming borrowed fields need no clone.
#[doc(hidden)]
pub fn value_of<T: serde::Serialize + ?Sized>(v: &T) -> Value {
    v.to_value()
}

/// Internal: munches `"key": value` pairs into `$map`. Values are token
/// trees accumulated until a top-level comma, then re-dispatched
/// through `json!` (commas inside parens/brackets/braces are already
/// grouped, so only genuine separators split values).
#[doc(hidden)]
#[macro_export]
macro_rules! json_entries {
    ($map:ident;) => {};
    ($map:ident; ,) => {};
    ($map:ident; $key:literal : $($rest:tt)*) => {
        $crate::json_entry_value!($map; $key; []; $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_entry_value {
    ($map:ident; $key:literal; [$($val:tt)*];) => {
        $map.insert(::std::string::String::from($key), $crate::json!($($val)*));
    };
    ($map:ident; $key:literal; [$($val:tt)*]; , $($rest:tt)*) => {
        $map.insert(::std::string::String::from($key), $crate::json!($($val)*));
        $crate::json_entries!($map; $($rest)*);
    };
    ($map:ident; $key:literal; [$($val:tt)*]; $next:tt $($rest:tt)*) => {
        $crate::json_entry_value!($map; $key; [$($val)* $next]; $($rest)*);
    };
}

/// Internal: munches array elements into `$items`.
#[doc(hidden)]
#[macro_export]
macro_rules! json_elems {
    ($items:ident;) => {};
    ($items:ident; ,) => {};
    ($items:ident; $($rest:tt)*) => {
        $crate::json_elem_value!($items; []; $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_elem_value {
    ($items:ident; [$($val:tt)*];) => {
        $items.push($crate::json!($($val)*));
    };
    ($items:ident; [$($val:tt)*]; , $($rest:tt)*) => {
        $items.push($crate::json!($($val)*));
        $crate::json_elems!($items; $($rest)*);
    };
    ($items:ident; [$($val:tt)*]; $next:tt $($rest:tt)*) => {
        $crate::json_elem_value!($items; [$($val)* $next]; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_documents() {
        let kind = "leak".to_string();
        let labels: Vec<u32> = vec![1, 2];
        let doc = json!({
            "kind": kind,
            "source": { "label": 3u32, "ok": true },
            "labels": labels,
            "count": 2usize,
            "list": [1u32, 2u32, { "x": null }],
        });
        assert_eq!(doc["kind"], "leak");
        assert_eq!(doc["source"]["label"].as_u64(), Some(3));
        assert_eq!(doc["source"]["ok"], true);
        assert_eq!(doc["labels"].as_array().unwrap().len(), 2);
        assert!(doc["list"][2]["x"].is_null());
    }

    #[test]
    fn roundtrip_through_text() {
        let doc = json!({ "a": [1u32, 2u32], "b": "x\"y", "c": -3i32, "d": 1.5f64 });
        let text = to_string(&doc).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, doc);
        let pretty = to_string_pretty(&doc).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(back2, doc);
    }

    #[test]
    fn from_slice_parses_bytes() {
        let v: Value = from_slice(b"{\"k\": [true, null, 7]}").unwrap();
        assert_eq!(v["k"][0], true);
        assert!(v["k"][1].is_null());
        assert_eq!(v["k"][2].as_u64(), Some(7));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
