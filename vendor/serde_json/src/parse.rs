//! Recursive-descent JSON parser producing [`Value`] trees.

use std::collections::BTreeMap;

use crate::{Error, Number, Value};

pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane chars.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !(self.eat_keyword("\\u")) {
                                    return Err(self.err("lone lead surrogate"));
                                }
                                let lo = self.hex4()?;
                                let combined = 0x10000
                                    + ((cp - 0xD800) << 10)
                                    + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (validity guaranteed
                    // by the &str input).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            let f: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
            Ok(Value::Number(Number::Float(f)))
        } else if let Some(stripped) = text.strip_prefix('-') {
            let n: i64 = stripped
                .parse::<i64>()
                .map(|v| -v)
                .map_err(|_| self.err("invalid number"))?;
            Ok(Value::Number(Number::NegInt(n)))
        } else {
            let n: u64 = text.parse().map_err(|_| self.err("invalid number"))?;
            Ok(Value::Number(Number::PosInt(n)))
        }
    }
}
