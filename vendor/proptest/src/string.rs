//! String generation from the small regex subset the workspace uses:
//! a sequence of atoms, each a literal character or a `[...]` character
//! class (ranges, escapes), optionally followed by an `{m}` / `{m,n}`
//! repetition. Example: `"[ -~\n]{0,200}"`.

use crate::test_runner::TestRng;

/// Samples one string matching `pattern`.
///
/// # Panics
///
/// Panics on regex features outside the supported subset, to fail fast
/// rather than silently mis-generate.
pub fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse(pattern);
    let mut out = String::new();
    for atom in &atoms {
        let n = atom.min + rng.usize_below(atom.max - atom.min + 1);
        for _ in 0..n {
            let idx = rng.usize_below(atom.chars.len());
            out.push(atom.chars[idx]);
        }
    }
    out
}

struct Atom {
    /// Candidate characters (uniformly chosen).
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Atom> {
    let mut atoms = Vec::new();
    let mut it = pattern.chars().peekable();
    while let Some(c) = it.next() {
        let chars = match c {
            '[' => parse_class(&mut it, pattern),
            '\\' => vec![unescape(it.next().unwrap_or_else(|| {
                panic!("dangling escape in pattern {pattern:?}")
            }))],
            '(' | ')' | '|' | '*' | '+' | '?' | '.' => {
                panic!("unsupported regex feature `{c}` in pattern {pattern:?}")
            }
            lit => vec![lit],
        };
        let (min, max) = if it.peek() == Some(&'{') {
            it.next();
            parse_repeat(&mut it, pattern)
        } else {
            (1, 1)
        };
        atoms.push(Atom { chars, min, max });
    }
    atoms
}

fn parse_class(it: &mut std::iter::Peekable<std::str::Chars<'_>>, pattern: &str) -> Vec<char> {
    let mut chars = Vec::new();
    loop {
        let c = it
            .next()
            .unwrap_or_else(|| panic!("unterminated class in pattern {pattern:?}"));
        match c {
            ']' => return chars,
            '\\' => chars.push(unescape(it.next().unwrap_or_else(|| {
                panic!("dangling escape in pattern {pattern:?}")
            }))),
            lo => {
                // Range `lo-hi` unless `-` is a literal before `]`.
                if it.peek() == Some(&'-') {
                    let mut ahead = it.clone();
                    ahead.next();
                    match ahead.peek() {
                        Some(&']') | None => chars.push(lo),
                        Some(&hi) => {
                            it.next();
                            it.next();
                            let hi = if hi == '\\' {
                                unescape(it.next().unwrap())
                            } else {
                                hi
                            };
                            assert!(lo <= hi, "inverted range in pattern {pattern:?}");
                            chars.extend(lo..=hi);
                        }
                    }
                } else {
                    chars.push(lo);
                }
            }
        }
    }
}

fn parse_repeat(it: &mut std::iter::Peekable<std::str::Chars<'_>>, pattern: &str) -> (usize, usize) {
    let mut min_text = String::new();
    let mut max_text = String::new();
    let mut in_max = false;
    loop {
        match it.next() {
            Some('}') => break,
            Some(',') => in_max = true,
            Some(d) if d.is_ascii_digit() => {
                if in_max {
                    max_text.push(d);
                } else {
                    min_text.push(d);
                }
            }
            other => panic!("bad repetition `{other:?}` in pattern {pattern:?}"),
        }
    }
    let min: usize = min_text.parse().expect("repetition lower bound");
    let max: usize = if in_max {
        max_text.parse().expect("repetition upper bound")
    } else {
        min
    };
    assert!(min <= max, "inverted repetition in pattern {pattern:?}");
    (min, max)
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}
