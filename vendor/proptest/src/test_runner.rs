//! Deterministic test execution: config, runner, and rng.

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Drives the cases of one property test.
pub struct TestRunner {
    cases: u32,
    name_seed: u64,
}

impl TestRunner {
    /// Creates a runner; `name` seeds the rng so different tests see
    /// different (but reproducible) inputs.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner {
            cases: config.cases,
            name_seed: h,
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// A fresh rng for the given case index; the (name, case) pair
    /// fully determines the stream.
    pub fn rng_for(&self, case: u32) -> TestRng {
        TestRng::seeded(self.name_seed ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }
}

/// SplitMix64 random stream used by all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a stream from a seed.
    pub fn seeded(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n` must be nonzero). Modulo bias is
    /// negligible for test-sized `n`.
    pub fn usize_below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}
