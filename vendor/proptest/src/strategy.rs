//! The `Strategy` trait and combinators.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value` from an rng.
///
/// Object-safe through [`BoxedStrategy`]; the combinator methods are
/// `Self: Sized` and so don't appear in the vtable.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then uses it to pick a second strategy to
    /// draw the final value from.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Builds a recursive strategy: `self` is the leaf case and
    /// `recurse` wraps an inner strategy into a deeper one, applied up
    /// to `depth` times. `desired_size` and `expected_branch_size` are
    /// accepted for API compatibility; depth alone bounds recursion
    /// here.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut cur = self.boxed();
        for _ in 0..depth {
            let deeper = recurse(cur.clone()).boxed();
            // Mixing in the shallower level gives a geometric depth
            // distribution instead of always-maximal nesting.
            cur = Union::new(vec![cur, deeper]).boxed();
        }
        cur
    }

    /// Type-erases this strategy behind a cheap `Clone`.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            sample: Rc::new(move |rng| self.sample(rng)),
        }
    }
}

/// A type-erased, clonable strategy (`Rc`-shared, like the test-local
/// usage pattern requires: `inner.clone()` inside `prop_recursive`).
pub struct BoxedStrategy<T> {
    sample: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            sample: Rc::clone(&self.sample),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.sample)(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Uniform choice among alternatives; the expansion of `prop_oneof!`.
#[derive(Clone)]
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.usize_below(self.options.len());
        self.options[idx].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// String strategies from a regex-like pattern; see [`crate::string`].
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        crate::string::sample_pattern(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
