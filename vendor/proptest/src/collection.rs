//! Collection strategies (`prop::collection`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length bounds for collection strategies.
pub trait SizeRange {
    /// Inclusive lower and upper length bounds.
    fn bounds(&self) -> (usize, usize);
}

impl SizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

impl SizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

/// Strategy producing `Vec`s of values from `element`, with a length
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    VecStrategy { element, min, max }
}

/// See [`vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.min + rng.usize_below(self.max - self.min + 1);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
