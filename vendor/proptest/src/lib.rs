//! Workspace-local stand-in for the `proptest` crate.
//!
//! Supports the subset of the API the workspace's property tests use:
//! the `proptest!` macro with `#![proptest_config]`, `Strategy` with
//! `prop_map` / `prop_flat_map` / `prop_recursive` / `boxed`, `Just`,
//! `prop_oneof!`, `any::<T>()`, range and tuple strategies, simple
//! regex string strategies (`"[class]{m,n}"` shapes), and
//! `prop::collection::vec`.
//!
//! Differences from real proptest, deliberate for this environment:
//! sampling is fully deterministic (seeded per test name and case
//! index, so failures reproduce without persistence files), and there
//! is **no shrinking** — a failing case panics with the case number.

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod arbitrary {
    //! `any::<T>()` support.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Strategy for "any value of `T`".
    pub struct Any<T>(PhantomData<T>);

    /// Uniform values of `T`.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy<Value = T>,
    {
        Any(PhantomData)
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    pub mod prop {
        //! Module alias so `prop::collection::vec(...)` resolves.
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Declares property tests. Accepts an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` functions
/// whose arguments use `pattern in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let runner = $crate::test_runner::TestRunner::new(config, stringify!($name));
                for case in 0..runner.cases() {
                    let mut rng = runner.rng_for(case);
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                    let result: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(msg) = result {
                        panic!("proptest case {case} of {} failed: {msg}", stringify!($name));
                    }
                }
            }
        )*
    };
}

/// Uniform choice among strategies producing the same value type.
/// (Real proptest supports weights; the workspace uses none.)
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case with
/// a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {:?} != {:?}", a, b),
            );
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err(::std::format!(
                "{}: {:?} != {:?}",
                ::std::format!($($fmt)+),
                a,
                b
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {:?} == {:?}", a, b),
            );
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_tuples_sample_in_bounds(
            (a, b) in (0u32..10, 5usize..=9),
            flag in any::<bool>(),
        ) {
            prop_assert!(a < 10);
            prop_assert!((5..=9).contains(&b));
            prop_assert!(usize::from(flag) <= 1);
        }

        #[test]
        fn vec_and_oneof_compose(
            items in prop::collection::vec(prop_oneof![Just(1u32), Just(2u32)], 0..5),
        ) {
            prop_assert!(items.len() < 5);
            prop_assert!(items.iter().all(|&x| x == 1 || x == 2));
        }

        #[test]
        fn string_regex_strategy(s in "[ -~\\n]{0,20}") {
            prop_assert!(s.len() <= 20);
            prop_assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[derive(Clone, Debug)]
    enum Tree {
        Leaf(u8),
        Node(Vec<Tree>),
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 1,
            Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
        }
    }

    fn leaves_in_range(t: &Tree) -> bool {
        match t {
            Tree::Leaf(v) => *v < 4,
            Tree::Node(kids) => kids.iter().all(leaves_in_range),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn recursive_strategies_bound_depth(
            t in (0u8..4).prop_map(Tree::Leaf).prop_recursive(3, 12, 3, |inner| {
                prop_oneof![
                    (0u8..4).prop_map(Tree::Leaf),
                    prop::collection::vec(inner, 0..3).prop_map(Tree::Node),
                ]
            }),
        ) {
            prop_assert!(depth(&t) <= 4, "depth {} too deep: {:?}", depth(&t), t);
            prop_assert!(leaves_in_range(&t), "leaf out of range: {:?}", t);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name_and_case() {
        let cfg = ProptestConfig::with_cases(4);
        let r1 = crate::test_runner::TestRunner::new(cfg.clone(), "x");
        let r2 = crate::test_runner::TestRunner::new(cfg, "x");
        let s = 0u64..1000;
        for case in 0..4 {
            let a = Strategy::sample(&s, &mut r1.rng_for(case));
            let b = Strategy::sample(&s, &mut r2.rng_for(case));
            assert_eq!(a, b);
        }
    }
}
