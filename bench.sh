#!/usr/bin/env sh
# PR-4 benchmark driver: fresh vs incremental query-family solving.
#
# Runs the fixed bench4 corpus (shipped examples, generated workloads,
# and the query-family subjects) under both solver strategies, asserts
# report identity, checks the acceptance gate (detect-phase wall >= 1.5x
# faster OR >= 30% fewer CDCL conflicts+decisions), and writes
# BENCH_4.json at the repository root.
#
# Knobs: CANARY_BENCH_REPS (wall samples per configuration, default 3),
# CANARY_BENCH_STMTS (subject size scale, default 1.0).
set -eu
cd "$(dirname "$0")"
cargo run --release --offline -p canary-bench --bin bench4 -- "${1:-BENCH_4.json}"
