#!/usr/bin/env sh
# Benchmark driver for the repo's tracked bench artifacts.
#
# bench4 — fresh vs incremental query-family solving: runs the fixed
# corpus (shipped examples, generated workloads, and the query-family
# subjects) under both solver strategies, asserts report identity,
# checks the acceptance gate (detect-phase wall >= 1.5x faster OR
# >= 30% fewer CDCL conflicts+decisions), and writes BENCH_4.json.
#
# bench8 — run-health telemetry overhead: runs the same corpus with
# telemetry off and on (registry + OpenMetrics export), checks the
# <= 3% overhead gate, and writes BENCH_8.json. The self-diff then
# exercises `canary bench diff` as the CI regression gate it is.
#
# bench5 — MLoC-scale detect: runs the saturation corpus under fresh /
# incremental / incremental+cubes, compares the static and
# work-stealing dispatchers at 4 threads (wall on multi-core hosts,
# deterministic makespan model on single-core), checks the bounded
# memory budget (VmHWM + spill), asserts report identity across every
# knob, and writes BENCH_5.json.
#
# Knobs: CANARY_BENCH_REPS (wall samples per configuration; bench4
# default 3, bench5 default 3, bench8 default 5), CANARY_BENCH_STMTS
# (subject size scale, default 1.0).
set -eu
cd "$(dirname "$0")"
cargo run --release --offline -p canary-bench --bin bench4 -- "${1:-BENCH_4.json}"
cargo run --release --offline -p canary-bench --bin bench8 -- "${2:-BENCH_8.json}"
cargo run --release --offline -p canary-bench --bin bench5 -- "${3:-BENCH_5.json}"
# A fresh artifact must diff clean against itself — the gate CI runs
# against the committed baseline on every PR.
cargo run --release --offline --bin canary -- bench diff "${2:-BENCH_8.json}" "${2:-BENCH_8.json}" >/dev/null
cargo run --release --offline --bin canary -- bench diff "${3:-BENCH_5.json}" "${3:-BENCH_5.json}" >/dev/null
echo "bench diff self-check: OK"
