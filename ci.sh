#!/usr/bin/env sh
# CI gate: build, test, lint, then re-run the whole test suite with the
# parallel front-end enabled (CANARY_TEST_THREADS overrides the default
# worker count) — the determinism guarantee means both passes must see
# byte-identical analysis output.
set -eux

cargo build --release --offline
cargo test -q --workspace --offline
cargo clippy --workspace --offline -- -D warnings
# Differential oracle suite over its fixed 16-seed corpus, serially and
# with the parallel front-end, so witness replay sees both configurations.
cargo test -q --offline --test oracle_differential
CANARY_TEST_THREADS=2 cargo test -q --offline --test oracle_differential
CANARY_TEST_THREADS=2 cargo test -q --workspace --offline
# Trace smoke: the profiler must emit a parseable Chrome trace covering
# all three phases plus at least one per-SMT-query span, and the trace
# must stay byte-deterministic across worker counts (timing normalized).
./target/release/canary examples/fig2_variant.cir --stats \
    --trace-out /tmp/canary_trace.json || [ $? -eq 1 ]  # exit 1 = bug reported
# Validate the trace as real JSON when python3 is available; the grep
# fallback is only for environments without python3 (previously the
# `2>/dev/null ||` chain silently masked malformed JSON).
if command -v python3 >/dev/null 2>&1; then
    python3 -c 'import json; json.load(open("/tmp/canary_trace.json"))'
else
    grep -q '"traceEvents"' /tmp/canary_trace.json
fi
for span in '"alg1"' '"alg2"' '"detect"' 'smt.query:'; do
    grep -q "$span" /tmp/canary_trace.json
done
cargo test -q --offline --test trace
CANARY_TEST_THREADS=2 cargo test -q --offline --test trace
# Solver-strategy equivalence: the incremental query-family back-end
# must agree with the fresh baseline (reports, verdicts, cores) under
# both strategies and with the parallel front-end.
cargo test -q --offline --test solver_strategy_equivalence
CANARY_SOLVER_STRATEGY=fresh cargo test -q --offline --test solver_strategy_equivalence
CANARY_SOLVER_STRATEGY=incremental cargo test -q --offline --test solver_strategy_equivalence
CANARY_TEST_THREADS=2 cargo test -q --offline --test solver_strategy_equivalence
