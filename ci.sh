#!/usr/bin/env sh
# CI gate: build, test, lint, then re-run the whole test suite with the
# parallel front-end enabled (CANARY_TEST_THREADS overrides the default
# worker count) — the determinism guarantee means both passes must see
# byte-identical analysis output.
set -eux

cargo build --release --offline
cargo test -q --workspace --offline
cargo clippy --workspace --offline -- -D warnings
# Differential oracle suite over its fixed 16-seed corpus, serially and
# with the parallel front-end, so witness replay sees both configurations.
cargo test -q --offline --test oracle_differential
CANARY_TEST_THREADS=2 cargo test -q --offline --test oracle_differential
CANARY_TEST_THREADS=2 cargo test -q --workspace --offline
