#!/usr/bin/env sh
# CI gate: build, test, lint, then re-run the whole test suite with the
# parallel front-end enabled (CANARY_TEST_THREADS overrides the default
# worker count) — the determinism guarantee means both passes must see
# byte-identical analysis output.
set -eux

cargo build --release --offline
cargo test -q --workspace --offline
cargo clippy --workspace --offline -- -D warnings
# Differential oracle suite over its fixed 16-seed corpus, serially and
# with the parallel front-end, so witness replay sees both configurations.
cargo test -q --offline --test oracle_differential
CANARY_TEST_THREADS=2 cargo test -q --offline --test oracle_differential
CANARY_TEST_THREADS=2 cargo test -q --workspace --offline
# Memory-model differential gates: the store-buffer oracle must
# certify every finding on the litmus corpus under all three models
# (the suite sweeps sc/tso/pso internally), serially and with the
# parallel front-end; the detector-level model tests ride along.
cargo test -q --offline --test memory_model_differential
CANARY_TEST_THREADS=2 cargo test -q --offline --test memory_model_differential
cargo test -q --offline --test memory_models
# Store-buffering litmus smoke: the Dekker-style double free replays
# on the store-buffer machine under tso/pso but has no SC witness, so
# --verify-witnesses separates the models at the CLI level.
./target/release/canary examples/tso_sb.cir --checkers doublefree \
    --memory-model sc --verify-witnesses > /tmp/canary_sb_sc.out || [ $? -eq 1 ]
grep -q 'witness verification: 0/1' /tmp/canary_sb_sc.out
for model in tso pso; do
    ./target/release/canary examples/tso_sb.cir --checkers doublefree \
        --memory-model "$model" --verify-witnesses \
        > "/tmp/canary_sb_$model.out" || [ $? -eq 1 ]
    grep -q 'witness verification: 1/1' "/tmp/canary_sb_$model.out"
done
# Trace smoke: the profiler must emit a parseable Chrome trace covering
# all three phases plus at least one per-SMT-query span, and the trace
# must stay byte-deterministic across worker counts (timing normalized).
./target/release/canary examples/fig2_variant.cir --stats \
    --trace-out /tmp/canary_trace.json || [ $? -eq 1 ]  # exit 1 = bug reported
# Validate the trace as real JSON when python3 is available; the grep
# fallback is only for environments without python3 (previously the
# `2>/dev/null ||` chain silently masked malformed JSON).
if command -v python3 >/dev/null 2>&1; then
    python3 -c 'import json; json.load(open("/tmp/canary_trace.json"))'
else
    grep -q '"traceEvents"' /tmp/canary_trace.json
fi
for span in '"alg1"' '"alg2"' '"detect"' 'smt.query:'; do
    grep -q "$span" /tmp/canary_trace.json
done
cargo test -q --offline --test trace
CANARY_TEST_THREADS=2 cargo test -q --offline --test trace
# Solver-strategy equivalence: the incremental query-family back-end
# must agree with the fresh baseline (reports, verdicts, cores) under
# both strategies and with the parallel front-end.
cargo test -q --offline --test solver_strategy_equivalence
CANARY_SOLVER_STRATEGY=fresh cargo test -q --offline --test solver_strategy_equivalence
CANARY_SOLVER_STRATEGY=incremental cargo test -q --offline --test solver_strategy_equivalence
CANARY_TEST_THREADS=2 cargo test -q --offline --test solver_strategy_equivalence
# Report observability gates: the SARIF export must validate against
# the (vendored, minimal) 2.1.0 schema. Prefer a real jsonschema
# validation, fall back to a structural python3 check, then to grep.
./target/release/canary examples/fig2_variant.cir --format sarif \
    > /tmp/canary_fig2.sarif || [ $? -eq 1 ]  # exit 1 = bug reported
if python3 -c 'import jsonschema' 2>/dev/null; then
    python3 -c '
import json, jsonschema
doc = json.load(open("/tmp/canary_fig2.sarif"))
schema = json.load(open("docs/sarif-2.1.0-minimal.schema.json"))
jsonschema.validate(doc, schema)'
elif command -v python3 >/dev/null 2>&1; then
    python3 -c '
import json
doc = json.load(open("/tmp/canary_fig2.sarif"))
assert doc["version"] == "2.1.0"
run = doc["runs"][0]
assert run["tool"]["driver"]["name"] == "canary"
res = run["results"][0]
assert res["message"]["text"]
assert res["partialFingerprints"]["canary/v1"]
assert res["codeFlows"][0]["threadFlows"][0]["locations"]'
else
    grep -q '"version": "2.1.0"' /tmp/canary_fig2.sarif
    grep -q '"threadFlows"' /tmp/canary_fig2.sarif
    grep -q '"partialFingerprints"' /tmp/canary_fig2.sarif
fi
# Two-run baseline smoke: an unchanged corpus must classify every
# finding as persisting (zero new), so the baseline gate exits 0 even
# though the run has findings; `canary diff` of a run against itself
# agrees.
./target/release/canary examples/fig2_variant.cir \
    --baseline /tmp/canary_fig2.sarif > /dev/null
./target/release/canary diff /tmp/canary_fig2.sarif /tmp/canary_fig2.sarif \
    | grep -q '0 new, 0 fixed'
# Determinism of every report artifact across worker counts and solver
# strategies (SARIF, provenance DAG, diff), plus dedup + baseline
# classification regressions.
cargo test -q --offline --test report_determinism
CANARY_TEST_THREADS=2 cargo test -q --offline --test report_determinism
# Lock-discipline gates: the checker matrix (double-lock +
# conflict-lock buggy/safe pairs and seeded corpora), the lock-order
# brute-force differential, and the lock-sharpened-MHP soundness
# envelope — serially and with the parallel front-end.
cargo test -q --offline --test checker_matrix
CANARY_TEST_THREADS=2 cargo test -q --offline --test checker_matrix
cargo test -q -p canary-smt --offline --test lock_order_brute
cargo test -q --offline --test lock_sharpen_equivalence
CANARY_TEST_THREADS=2 cargo test -q --offline --test lock_sharpen_equivalence
# Deadlock example smoke: both lock checkers fire (exit 1) and the
# SARIF export validates like the Fig. 2 document above.
./target/release/canary examples/deadlock.cir --format sarif \
    > /tmp/canary_deadlock.sarif || [ $? -eq 1 ]  # exit 1 = bug reported
if python3 -c 'import jsonschema' 2>/dev/null; then
    python3 -c '
import json, jsonschema
doc = json.load(open("/tmp/canary_deadlock.sarif"))
schema = json.load(open("docs/sarif-2.1.0-minimal.schema.json"))
jsonschema.validate(doc, schema)
rules = [r["ruleId"] for r in doc["runs"][0]["results"]]
assert "canary/double-lock" in rules, rules
assert "canary/conflict-lock" in rules, rules'
elif command -v python3 >/dev/null 2>&1; then
    python3 -c '
import json
doc = json.load(open("/tmp/canary_deadlock.sarif"))
assert doc["version"] == "2.1.0"
run = doc["runs"][0]
rules = [r["ruleId"] for r in run["results"]]
assert "canary/double-lock" in rules, rules
assert "canary/conflict-lock" in rules, rules
for r in run["results"]:
    assert run["tool"]["driver"]["rules"][r["ruleIndex"]]["id"] == r["ruleId"]'
else
    grep -q '"canary/double-lock"' /tmp/canary_deadlock.sarif
    grep -q '"canary/conflict-lock"' /tmp/canary_deadlock.sarif
fi
# Store-buffer litmus SARIF smoke: the tso run of the SB example must
# validate against the schema, report the double free, and record the
# memory model in the run manifest.
./target/release/canary examples/tso_sb.cir --memory-model tso --format sarif \
    > /tmp/canary_tso_sb.sarif || [ $? -eq 1 ]  # exit 1 = bug reported
if python3 -c 'import jsonschema' 2>/dev/null; then
    python3 -c '
import json, jsonschema
doc = json.load(open("/tmp/canary_tso_sb.sarif"))
schema = json.load(open("docs/sarif-2.1.0-minimal.schema.json"))
jsonschema.validate(doc, schema)
run = doc["runs"][0]
rules = [r["ruleId"] for r in run["results"]]
assert "canary/double-free" in rules, rules
assert run["invocations"][0]["properties"]["config"]["memory_model"] == "tso"'
elif command -v python3 >/dev/null 2>&1; then
    python3 -c '
import json
doc = json.load(open("/tmp/canary_tso_sb.sarif"))
assert doc["version"] == "2.1.0"
run = doc["runs"][0]
rules = [r["ruleId"] for r in run["results"]]
assert "canary/double-free" in rules, rules
assert run["invocations"][0]["properties"]["config"]["memory_model"] == "tso"'
else
    grep -q '"canary/double-free"' /tmp/canary_tso_sb.sarif
    grep -q '"memory_model": "tso"' /tmp/canary_tso_sb.sarif
fi
# Run-health telemetry gates: OpenMetrics export smoke, --log flag
# smoke, and the `canary bench diff` regression gate — a fresh
# artifact must self-diff clean and a perturbed copy must fail, so
# the gate itself is gated.
./target/release/canary examples/fig2_variant.cir --log off \
    --metrics-out /tmp/canary_fig2.om > /dev/null || [ $? -eq 1 ]  # exit 1 = bug reported
tail -c 6 /tmp/canary_fig2.om | grep -q '# EOF'
grep -q '^canary_detect_queries_total 1$' /tmp/canary_fig2.om
grep -q '^canary_smt_query_seconds_bucket{kind="use-after-free",le="+Inf"} 1$' /tmp/canary_fig2.om
grep -q '^canary_term_table_bytes ' /tmp/canary_fig2.om
grep -q '^canary_phase_peak_rss_bytes{phase="detect"} ' /tmp/canary_fig2.om
# --log summary heartbeats reach stderr only: stdout matches a quiet run.
./target/release/canary examples/fig2.cir --log summary \
    > /tmp/canary_log.out 2> /tmp/canary_log.err
grep -q 'canary: alg1: level' /tmp/canary_log.err
grep -q '(converged)' /tmp/canary_log.err
./target/release/canary examples/fig2.cir > /tmp/canary_quiet.out
cmp /tmp/canary_log.out /tmp/canary_quiet.out
# The committed bench artifact self-diffs clean (exit 0, no regressions).
./target/release/canary bench diff BENCH_8.json BENCH_8.json > /tmp/canary_bench_self.out
grep -q '0 regressed' /tmp/canary_bench_self.out
# A +25% aggregate-time perturbation must gate exit 1 and name the metric.
if command -v python3 >/dev/null 2>&1; then
    python3 -c '
import json
d = json.load(open("BENCH_8.json"))
d["aggregate"]["telemetry_on_total_s"] *= 1.25
json.dump(d, open("/tmp/canary_bench_slow.json", "w"))'
    base=BENCH_8.json
else
    printf '{"aggregate": {"telemetry_on_total_s": 0.100}}' > /tmp/canary_bench_base.json
    printf '{"aggregate": {"telemetry_on_total_s": 0.125}}' > /tmp/canary_bench_slow.json
    base=/tmp/canary_bench_base.json
fi
rc=0
./target/release/canary bench diff "$base" /tmp/canary_bench_slow.json \
    > /tmp/canary_bench_diff.out || rc=$?
[ "$rc" -eq 1 ]
grep -q 'REGRESSED' /tmp/canary_bench_diff.out
# MLoC-scale detect gates (PR-9): the dispatcher/shard/cube equivalence
# suite serially and with the parallel front-end, then the bench5 smoke
# — regenerate the saturation-corpus artifact at the committed scale
# and diff it against the tracked baseline. Work counters are
# deterministic and must match exactly; wall times get a wide tolerance
# because CI hosts are noisy and the 4-thread runs time-slice on
# single-core runners.
cargo test -q --offline --test shard_equivalence
CANARY_TEST_THREADS=2 cargo test -q --offline --test shard_equivalence
CANARY_BENCH_REPS=2 cargo run --release --offline -p canary-bench --bin bench5 -- /tmp/canary_bench5.json
./target/release/canary bench diff BENCH_5.json /tmp/canary_bench5.json --tolerance 75 \
    > /tmp/canary_bench5_diff.out
grep -q '0 regressed' /tmp/canary_bench5_diff.out
# Analysis-audit gates (PR-10): the suppression-accounting suite
# (reconciliation invariant + knob-invariant JSONL export + per-layer
# certificates), serially and with the parallel front-end.
cargo test -q --offline --test audit_reconciliation
CANARY_TEST_THREADS=2 cargo test -q --offline --test audit_reconciliation
# The --audit-out export on the three-certificate example must carry
# one record per line that validates against the vendored mini-schema
# (same three-tier fallback as the SARIF gate), and --stats must print
# a reconciled audit line.
./target/release/canary examples/audited.cir --stats \
    --audit-out /tmp/canary_audited.jsonl > /tmp/canary_audited.out
grep -q '^audit: ' /tmp/canary_audited.out
! grep -q 'RECONCILIATION FAILED' /tmp/canary_audited.out
if python3 -c 'import jsonschema' 2>/dev/null; then
    python3 -c '
import json, jsonschema
schema = json.load(open("docs/audit-minimal.schema.json"))
lines = [l for l in open("/tmp/canary_audited.jsonl") if l.strip()]
assert lines, "empty audit export"
tags = set()
for i, line in enumerate(lines):
    rec = json.loads(line)
    jsonschema.validate(rec, schema)
    assert rec["seq"] == i, (rec["seq"], i)
    tags.add(rec["disposition"])
assert {"pruned_mhp", "pruned_lock_sharpen", "unsat_core"} <= tags, tags'
elif command -v python3 >/dev/null 2>&1; then
    python3 -c '
import json
lines = [l for l in open("/tmp/canary_audited.jsonl") if l.strip()]
assert lines, "empty audit export"
tags = set()
for i, line in enumerate(lines):
    rec = json.loads(line)
    assert rec["seq"] == i, (rec["seq"], i)
    assert rec["layer"] in ("interference", "detect"), rec
    assert isinstance(rec["certificate"], dict), rec
    tags.add(rec["disposition"])
assert {"pruned_mhp", "pruned_lock_sharpen", "unsat_core"} <= tags, tags'
else
    grep -q '"disposition":"pruned_mhp"' /tmp/canary_audited.jsonl
    grep -q '"disposition":"pruned_lock_sharpen"' /tmp/canary_audited.jsonl
    grep -q '"disposition":"unsat_core"' /tmp/canary_audited.jsonl
fi
# why-not smoke: the reported fig2_variant pair answers "reported",
# each suppressed audited.cir pair prints its layer's certificate, and
# a never-enumerated pair exits 1.
./target/release/canary why-not examples/fig2_variant.cir l7 l4 \
    | grep -q 'reported: confirmed finding'
./target/release/canary why-not examples/audited.cir l24 l11 \
    | grep -q 'pruned by MHP analysis'
./target/release/canary why-not examples/audited.cir l15 l22 \
    | grep -q 'pruned by lock-sharpened MHP'
./target/release/canary why-not examples/audited.cir l3 l19 \
    | grep -q 'refuted by the solver'
rc=0
./target/release/canary why-not examples/audited.cir l1 l2 \
    > /tmp/canary_whynot_none.out || rc=$?
[ "$rc" -eq 1 ]
grep -q 'never enumerated' /tmp/canary_whynot_none.out
# why smoke: the fig2_variant fingerprint round-trips from the SARIF
# export back into an explanation.
fp=$(grep -o '"canary/v1": "[0-9a-f]*"' /tmp/canary_fig2.sarif \
    | head -1 | cut -d'"' -f4)
./target/release/canary why examples/fig2_variant.cir "$fp" \
    | grep -q 'reported: confirmed finding'
